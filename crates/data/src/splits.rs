//! The four recommendation problems of §III-A: Warm-start, C-U, C-I, C-UI.
//!
//! [`Splitter`] partitions a target domain's users and items into
//! existing/new by the paper's ≥5-rating rule, then materializes each
//! problem as a [`Scenario`]:
//!
//! * shared **meta-training tasks** built from the warm ratings
//!   `R_w = {r_ui : u ∈ U_e, i ∈ I_e}` (identical across scenarios — the
//!   paper trains once on `R_w` and fine-tunes per cold setting);
//! * **fine-tune tasks** carrying the support sets of the testing tasks
//!   (empty for Warm-start);
//! * **evaluation instances** under leave-one-out with sampled negatives.
//!
//! One detail deviates deliberately from the paper's §V-A2 wording: the
//! paper evaluates Warm-start "on the query set of T_tr", i.e. on examples
//! the outer loop has already optimized. We instead hold the Warm-start
//! evaluation positive *out* of the training tasks (the standard
//! leave-one-out protocol of He et al. 2017, which the paper cites as its
//! evaluation basis). This avoids train/test leakage and affects all
//! methods identically.

use metadpa_tensor::SeededRng;

use crate::domain::Domain;
use crate::task::{EvalInstance, Task};

/// Which of the four §III-A problems a scenario instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Existing users x existing items with sparse interactions.
    Warm,
    /// New (cold-start) users x existing items.
    ColdUser,
    /// Existing users x new (cold-start) items.
    ColdItem,
    /// New users x new items.
    ColdUserItem,
}

impl ScenarioKind {
    /// All four scenarios, in the paper's presentation order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Warm,
        ScenarioKind::ColdUser,
        ScenarioKind::ColdItem,
        ScenarioKind::ColdUserItem,
    ];

    /// The paper's shorthand label.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Warm => "Warm-start",
            ScenarioKind::ColdUser => "C-U",
            ScenarioKind::ColdItem => "C-I",
            ScenarioKind::ColdUserItem => "C-UI",
        }
    }
}

/// Protocol parameters.
#[derive(Clone, Debug)]
pub struct SplitConfig {
    /// Minimum ratings for a user/item to count as "existing" (paper: 5).
    pub existing_threshold: usize,
    /// Number of sampled negatives per evaluation positive (paper: 99).
    pub n_eval_negatives: usize,
    /// Negatives sampled per positive in training/fine-tuning tasks.
    pub train_negatives_per_positive: usize,
    /// Maximum positives in a task's support set (the "few ratings" used
    /// for fine-tuning in cold settings).
    pub max_support_positives: usize,
    /// Seed for split and negative-sampling randomness.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self {
            existing_threshold: 5,
            n_eval_negatives: 99,
            train_negatives_per_positive: 4,
            max_support_positives: 8,
            seed: 0xC01D,
        }
    }
}

/// A materialized recommendation problem.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Which §III-A problem this is.
    pub kind: ScenarioKind,
    /// Meta-training tasks built from the warm ratings `R_w`.
    pub train_tasks: Vec<Task>,
    /// Per-test-user support tasks for cold-start fine-tuning (empty for
    /// Warm-start, whose evaluation needs no adaptation step).
    pub finetune_tasks: Vec<Task>,
    /// Leave-one-out evaluation instances.
    pub eval: Vec<EvalInstance>,
}

/// Partitions a domain per §III-A and materializes scenarios.
pub struct Splitter<'a> {
    domain: &'a Domain,
    config: SplitConfig,
    existing_users: Vec<usize>,
    new_users: Vec<usize>,
    existing_items: Vec<usize>,
    new_items: Vec<usize>,
}

impl<'a> Splitter<'a> {
    /// Computes the existing/new partitions for `domain`.
    pub fn new(domain: &'a Domain, config: SplitConfig) -> Self {
        let threshold = config.existing_threshold;
        let mut existing_users = Vec::new();
        let mut new_users = Vec::new();
        for (u, items) in domain.interactions.iter().enumerate() {
            if items.len() >= threshold {
                existing_users.push(u);
            } else {
                new_users.push(u);
            }
        }
        let item_counts = domain.item_rating_counts();
        let mut existing_items = Vec::new();
        let mut new_items = Vec::new();
        for (i, &c) in item_counts.iter().enumerate() {
            if c >= threshold {
                existing_items.push(i);
            } else {
                new_items.push(i);
            }
        }
        Self { domain, config, existing_users, new_users, existing_items, new_items }
    }

    /// Users with at least `existing_threshold` ratings (`U_e`).
    pub fn existing_users(&self) -> &[usize] {
        &self.existing_users
    }

    /// Cold-start users (`U_n`).
    pub fn new_users(&self) -> &[usize] {
        &self.new_users
    }

    /// Items with at least `existing_threshold` ratings (`I_e`).
    pub fn existing_items(&self) -> &[usize] {
        &self.existing_items
    }

    /// Cold-start items (`I_n`).
    pub fn new_items(&self) -> &[usize] {
        &self.new_items
    }

    /// Materializes one of the four problems.
    pub fn scenario(&self, kind: ScenarioKind) -> Scenario {
        let mut rng = SeededRng::new(self.config.seed ^ (kind as u64).wrapping_mul(0x9E37));
        let is_existing_item = membership_mask(self.domain.n_items(), &self.existing_items);
        let is_new_item = membership_mask(self.domain.n_items(), &self.new_items);

        // -------------------------------------------------------------
        // Evaluation users / item pools per scenario.
        // -------------------------------------------------------------
        let (eval_users, item_pool_mask, item_pool): (&[usize], &[bool], &[usize]) = match kind {
            ScenarioKind::Warm | ScenarioKind::ColdItem => {
                (&self.existing_users, &is_existing_item, &self.existing_items)
            }
            ScenarioKind::ColdUser | ScenarioKind::ColdUserItem => {
                (&self.new_users, &is_existing_item, &self.existing_items)
            }
        };
        // C-I and C-UI evaluate on new items.
        let (item_pool_mask, item_pool): (&[bool], &[usize]) = match kind {
            ScenarioKind::ColdItem | ScenarioKind::ColdUserItem => (&is_new_item, &self.new_items),
            _ => (item_pool_mask, item_pool),
        };

        // -------------------------------------------------------------
        // Build eval instances and (for cold settings) fine-tune tasks.
        // Warm-start eval positives must also be excluded from training
        // tasks, so collect them keyed by user.
        // -------------------------------------------------------------
        let mut eval = Vec::new();
        let mut finetune_tasks = Vec::new();
        let mut warm_holdout: Vec<Option<usize>> = vec![None; self.domain.n_users()];

        for &u in eval_users {
            let in_pool: Vec<usize> = self.domain.interactions[u]
                .iter()
                .copied()
                .filter(|&i| item_pool_mask[i])
                .collect();
            // Warm-start needs two in-pool positives: one held out for
            // evaluation and at least one left for the training task.
            // Cold settings need one in-pool positive to evaluate plus
            // something to fine-tune on (see support fallback below).
            if in_pool.is_empty() || (kind == ScenarioKind::Warm && in_pool.len() < 2) {
                continue;
            }
            let mut shuffled = in_pool.clone();
            rng.shuffle(&mut shuffled);
            let positive = shuffled[0];
            let mut support_pos: Vec<usize> =
                shuffled[1..].iter().copied().take(self.config.max_support_positives).collect();
            // Support fallback for the scarcest settings (C-I/C-UI at small
            // scale): when a user's only in-pool rating is the held-out
            // positive, fine-tune on their remaining out-of-pool ratings —
            // a new user/item is adapted with whatever few ratings exist.
            if support_pos.is_empty() && kind != ScenarioKind::Warm {
                support_pos = self.domain.interactions[u]
                    .iter()
                    .copied()
                    .filter(|&i| i != positive && !item_pool_mask[i])
                    .take(self.config.max_support_positives)
                    .collect();
            }
            if support_pos.is_empty() && kind != ScenarioKind::Warm {
                continue;
            }

            let negatives =
                self.sample_negatives(u, item_pool, self.config.n_eval_negatives, &mut rng);
            if negatives.is_empty() {
                continue;
            }
            eval.push(EvalInstance { user: u, positive, negatives });

            if kind != ScenarioKind::Warm {
                let support = self.label_with_negatives(u, &support_pos, item_pool, &mut rng);
                finetune_tasks.push(Task { user: u, support, query: Vec::new() });
            } else {
                warm_holdout[u] = Some(positive);
            }
        }

        // -------------------------------------------------------------
        // Meta-training tasks from R_w (existing users x existing items),
        // excluding Warm-start holdout positives.
        // -------------------------------------------------------------
        let mut train_tasks = Vec::new();
        for &u in &self.existing_users {
            let mut positives: Vec<usize> = self.domain.interactions[u]
                .iter()
                .copied()
                .filter(|&i| is_existing_item[i] && warm_holdout[u] != Some(i))
                .collect();
            if positives.len() < 2 {
                continue;
            }
            rng.shuffle(&mut positives);
            // Half support (capped), half query — both non-empty.
            let n_support = (positives.len() / 2)
                .clamp(1, self.config.max_support_positives)
                .min(positives.len() - 1);
            let (sup_pos, qry_pos) = positives.split_at(n_support);
            let support = self.label_with_negatives(u, sup_pos, &self.existing_items, &mut rng);
            let query = self.label_with_negatives(u, qry_pos, &self.existing_items, &mut rng);
            train_tasks.push(Task { user: u, support, query });
        }

        Scenario { kind, train_tasks, finetune_tasks, eval }
    }

    /// Labels positives with 1.0 and appends sampled negatives labelled 0.0.
    fn label_with_negatives(
        &self,
        user: usize,
        positives: &[usize],
        pool: &[usize],
        rng: &mut SeededRng,
    ) -> Vec<(usize, f32)> {
        let mut out: Vec<(usize, f32)> = positives.iter().map(|&i| (i, 1.0)).collect();
        let n_neg = positives.len() * self.config.train_negatives_per_positive;
        let negatives = self.sample_negatives(user, pool, n_neg, rng);
        out.extend(negatives.into_iter().map(|i| (i, 0.0)));
        out
    }

    /// Samples up to `count` items from `pool` that the user has never
    /// interacted with. Returns fewer when the pool is too small.
    fn sample_negatives(
        &self,
        user: usize,
        pool: &[usize],
        count: usize,
        rng: &mut SeededRng,
    ) -> Vec<usize> {
        let rated = &self.domain.interactions[user];
        let candidates: Vec<usize> =
            pool.iter().copied().filter(|i| rated.binary_search(i).is_err()).collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let take = count.min(candidates.len());
        rng.sample_indices(candidates.len(), take).into_iter().map(|idx| candidates[idx]).collect()
    }
}

fn membership_mask(n: usize, members: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &m in members {
        mask[m] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DomainConfig, WorldConfig};
    use crate::generator::generate_world;

    fn world() -> crate::domain::World {
        generate_world(&WorldConfig {
            latent_dim: 8,
            content_dim: 24,
            n_topics: 5,
            content_gap: 0.3,
            target: DomainConfig::new("T", 200, 120, 9.0),
            sources: vec![DomainConfig::new("S", 150, 90, 10.0)],
            shared_users: vec![50],
            seed: 42,
        })
    }

    #[test]
    fn partitions_respect_threshold_and_cover_everything() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        assert_eq!(sp.existing_users().len() + sp.new_users().len(), w.target.n_users());
        assert_eq!(sp.existing_items().len() + sp.new_items().len(), w.target.n_items());
        for &u in sp.existing_users() {
            assert!(w.target.interactions[u].len() >= 5);
        }
        for &u in sp.new_users() {
            assert!(w.target.interactions[u].len() < 5);
        }
        assert!(!sp.new_users().is_empty(), "need cold users for C-U");
        assert!(!sp.new_items().is_empty(), "need cold items for C-I");
    }

    #[test]
    fn warm_scenario_has_no_finetune_tasks_and_no_leakage() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let s = sp.scenario(ScenarioKind::Warm);
        assert!(s.finetune_tasks.is_empty());
        assert!(!s.eval.is_empty());
        assert!(!s.train_tasks.is_empty());
        // No training task may contain its user's eval positive.
        for e in &s.eval {
            for t in s.train_tasks.iter().filter(|t| t.user == e.user) {
                assert!(
                    t.support.iter().chain(t.query.iter()).all(|&(i, _)| i != e.positive),
                    "user {} eval positive {} leaked into training",
                    e.user,
                    e.positive
                );
            }
        }
    }

    #[test]
    fn cold_user_scenario_only_evaluates_new_users_on_existing_items() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let s = sp.scenario(ScenarioKind::ColdUser);
        let new_users: std::collections::HashSet<_> = sp.new_users().iter().copied().collect();
        let existing_items: std::collections::HashSet<_> =
            sp.existing_items().iter().copied().collect();
        assert!(!s.eval.is_empty(), "C-U needs eval instances");
        for e in &s.eval {
            assert!(new_users.contains(&e.user));
            assert!(existing_items.contains(&e.positive));
            for &n in &e.negatives {
                assert!(existing_items.contains(&n));
            }
        }
        // Every eval user has a fine-tune task with a non-empty support.
        for e in &s.eval {
            let ft =
                s.finetune_tasks.iter().find(|t| t.user == e.user).expect("missing finetune task");
            assert!(!ft.support.is_empty());
            // Support must not contain the eval positive.
            assert!(ft.support.iter().all(|&(i, _)| i != e.positive));
        }
    }

    #[test]
    fn cold_item_scenario_evaluates_existing_users_on_new_items() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let s = sp.scenario(ScenarioKind::ColdItem);
        let existing_users: std::collections::HashSet<_> =
            sp.existing_users().iter().copied().collect();
        let new_items: std::collections::HashSet<_> = sp.new_items().iter().copied().collect();
        for e in &s.eval {
            assert!(existing_users.contains(&e.user));
            assert!(new_items.contains(&e.positive));
            for &n in &e.negatives {
                assert!(new_items.contains(&n));
            }
        }
    }

    #[test]
    fn eval_negatives_are_unobserved_and_distinct() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        for kind in ScenarioKind::ALL {
            let s = sp.scenario(kind);
            for e in &s.eval {
                let rated = &w.target.interactions[e.user];
                let mut seen = std::collections::HashSet::new();
                for &n in &e.negatives {
                    assert!(rated.binary_search(&n).is_err(), "{:?}: negative was rated", kind);
                    assert!(seen.insert(n), "{kind:?}: duplicate negative");
                    assert_ne!(n, e.positive);
                }
            }
        }
    }

    #[test]
    fn train_tasks_have_nonempty_support_and_query() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let s = sp.scenario(ScenarioKind::Warm);
        for t in &s.train_tasks {
            assert!(!t.support.is_empty());
            assert!(!t.query.is_empty());
            // Positives carry label 1, negatives 0.
            for &(_, l) in t.support.iter().chain(t.query.iter()) {
                assert!(l == 0.0 || l == 1.0);
            }
            // Support size respects the cap.
            let sup_pos = t.support.iter().filter(|&&(_, l)| l == 1.0).count();
            assert!(sup_pos <= SplitConfig::default().max_support_positives);
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let a = sp.scenario(ScenarioKind::ColdUser);
        let b = sp.scenario(ScenarioKind::ColdUser);
        assert_eq!(a.eval, b.eval);
        assert_eq!(a.train_tasks, b.train_tasks);
    }

    #[test]
    fn different_seeds_give_different_splits() {
        let w = world();
        let a = Splitter::new(&w.target, SplitConfig::default()).scenario(ScenarioKind::Warm);
        let b = Splitter::new(&w.target, SplitConfig { seed: 999, ..SplitConfig::default() })
            .scenario(ScenarioKind::Warm);
        assert_ne!(a.eval, b.eval);
    }

    #[test]
    fn eval_negative_count_matches_protocol_when_pool_allows() {
        let w = world();
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let s = sp.scenario(ScenarioKind::Warm);
        // Existing-item pool is comfortably larger than 99 in this world?
        // If not, negatives are capped at pool size — assert consistency.
        let pool = sp.existing_items().len();
        for e in &s.eval {
            let rated_in_pool = w.target.interactions[e.user]
                .iter()
                .filter(|i| sp.existing_items().binary_search(i).is_ok())
                .count();
            let available = pool - rated_in_pool;
            assert_eq!(e.negatives.len(), 99.min(available));
        }
    }
}

//! Plain-text dataset interchange.
//!
//! The reproduction ships with the SynthAmazon generator, but a downstream
//! user's first question is "how do I run this on *my* data?". This module
//! defines a simple TSV layout and round-trippable readers/writers for it:
//!
//! ```text
//! <dir>/
//!   target/                       one directory per domain
//!     interactions.tsv            user_id \t item_id       (implicit positives)
//!     user_content.tsv            user_id \t v0 v1 v2 ...  (dense content row)
//!     item_content.tsv            item_id \t v0 v1 v2 ...
//!   sources/<name>/               same three files per source domain
//!   shared_<name>.tsv             source_user_id \t target_user_id
//! ```
//!
//! Ids must be dense `0..n`; content rows must all have the same width;
//! interactions may arrive unsorted and with duplicates (they are sorted
//! and deduplicated on read). Malformed input yields an
//! `io::ErrorKind::InvalidData` error naming the file and line.

use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use metadpa_tensor::Matrix;

use crate::domain::{Domain, World};

fn invalid(path: &Path, line: usize, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {}", path.display(), line, msg))
}

/// Writes one domain into `dir` (created if absent).
pub fn write_domain(domain: &Domain, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;

    let mut w = BufWriter::new(fs::File::create(dir.join("interactions.tsv"))?);
    for (user, items) in domain.interactions.iter().enumerate() {
        for item in items {
            writeln!(w, "{user}\t{item}")?;
        }
    }
    w.flush()?;

    write_content(&domain.user_content, &dir.join("user_content.tsv"))?;
    write_content(&domain.item_content, &dir.join("item_content.tsv"))?;
    Ok(())
}

fn write_content(content: &Matrix, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(fs::File::create(path)?);
    for row in 0..content.rows() {
        let values: Vec<String> = content.row(row).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{row}\t{}", values.join(" "))?;
    }
    w.flush()
}

/// Reads one domain from `dir`; `name` is attached to the result.
pub fn read_domain(name: &str, dir: &Path) -> io::Result<Domain> {
    let user_content = read_content(&dir.join("user_content.tsv"))?;
    let item_content = read_content(&dir.join("item_content.tsv"))?;
    let n_users = user_content.rows();
    let n_items = item_content.rows();

    let path = dir.join("interactions.tsv");
    let reader = BufReader::new(fs::File::open(&path)?);
    let mut interactions: Vec<Vec<usize>> = vec![Vec::new(); n_users];
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let user: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| invalid(&path, idx + 1, "expected user_id"))?;
        let item: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| invalid(&path, idx + 1, "expected item_id"))?;
        if user >= n_users {
            return Err(invalid(&path, idx + 1, &format!("user {user} >= {n_users} users")));
        }
        if item >= n_items {
            return Err(invalid(&path, idx + 1, &format!("item {item} >= {n_items} items")));
        }
        interactions[user].push(item);
    }
    for items in &mut interactions {
        items.sort_unstable();
        items.dedup();
    }

    let domain = Domain { name: name.to_string(), interactions, user_content, item_content };
    domain.validate();
    Ok(domain)
}

fn read_content(path: &Path) -> io::Result<Matrix> {
    let reader = BufReader::new(fs::File::open(path)?);
    let mut rows: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut width: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, '\t');
        let id: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| invalid(path, idx + 1, "expected id"))?;
        let values: Result<Vec<f32>, _> = parts
            .next()
            .ok_or_else(|| invalid(path, idx + 1, "expected content values"))?
            .split_whitespace()
            .map(str::parse::<f32>)
            .collect();
        let values = values.map_err(|_| invalid(path, idx + 1, "non-numeric content value"))?;
        match width {
            None => width = Some(values.len()),
            Some(w) if w != values.len() => {
                return Err(invalid(
                    path,
                    idx + 1,
                    &format!("content width {} differs from {}", values.len(), w),
                ));
            }
            _ => {}
        }
        rows.push((id, values));
    }
    let n = rows.len();
    let width = width.ok_or_else(|| invalid(path, 0, "empty content file"))?;
    let mut seen = vec![false; n];
    let mut out = Matrix::zeros(n, width);
    for (id, values) in rows {
        if id >= n {
            return Err(invalid(path, 0, &format!("id {id} not dense in 0..{n}")));
        }
        if seen[id] {
            return Err(invalid(path, 0, &format!("duplicate id {id}")));
        }
        seen[id] = true;
        out.row_mut(id).copy_from_slice(&values);
    }
    Ok(out)
}

/// Writes a whole world (target, sources, shared-user maps) into `dir`.
pub fn write_world(world: &World, dir: &Path) -> io::Result<()> {
    write_domain(&world.target, &dir.join("target"))?;
    for (source, pairs) in world.sources.iter().zip(world.shared_users.iter()) {
        write_domain(source, &dir.join("sources").join(&source.name))?;
        let path = dir.join(format!("shared_{}.tsv", source.name));
        let mut w = BufWriter::new(fs::File::create(path)?);
        for &(su, tu) in pairs {
            writeln!(w, "{su}\t{tu}")?;
        }
        w.flush()?;
    }
    Ok(())
}

/// Reads a world written by [`write_world`]. `target_name` labels the
/// target domain; sources are discovered from the `sources/` directory
/// (sorted by name for determinism).
pub fn read_world(target_name: &str, dir: &Path) -> io::Result<World> {
    let target = read_domain(target_name, &dir.join("target"))?;
    let mut source_names: Vec<String> = Vec::new();
    let sources_dir = dir.join("sources");
    if sources_dir.exists() {
        for entry in fs::read_dir(&sources_dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                source_names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
    }
    source_names.sort();

    let mut sources = Vec::with_capacity(source_names.len());
    let mut shared_users = Vec::with_capacity(source_names.len());
    for name in &source_names {
        let source = read_domain(name, &sources_dir.join(name))?;
        let path = dir.join(format!("shared_{name}.tsv"));
        let reader = BufReader::new(fs::File::open(&path)?);
        let mut pairs = Vec::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            let su: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| invalid(&path, idx + 1, "expected source user id"))?;
            let tu: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| invalid(&path, idx + 1, "expected target user id"))?;
            pairs.push((su, tu));
        }
        sources.push(source);
        shared_users.push(pairs);
    }

    let world = World { target, sources, shared_users };
    world.validate();
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_world;
    use crate::presets::tiny_world;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metadpa_io_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn domain_roundtrip_is_exact_in_structure() {
        let w = generate_world(&tiny_world(201));
        let dir = temp_dir("domain");
        write_domain(&w.target, &dir).expect("write");
        let back = read_domain(&w.target.name, &dir).expect("read");
        assert_eq!(back.interactions, w.target.interactions);
        assert_eq!(back.n_users(), w.target.n_users());
        assert_eq!(back.n_items(), w.target.n_items());
        // Content roundtrips through decimal text: compare within epsilon.
        for (a, b) in
            back.user_content.as_slice().iter().zip(w.target.user_content.as_slice().iter())
        {
            assert!((a - b).abs() < 1e-6);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn world_roundtrip_preserves_sources_and_shared_users() {
        let w = generate_world(&tiny_world(202));
        let dir = temp_dir("world");
        write_world(&w, &dir).expect("write");
        let back = read_world(&w.target.name, &dir).expect("read");
        assert_eq!(back.sources.len(), w.sources.len());
        // Sources are sorted by name on read; match by name.
        for src in &w.sources {
            let idx = back.sources.iter().position(|s| s.name == src.name).expect("source present");
            assert_eq!(back.sources[idx].interactions, src.interactions);
        }
        let orig_pairs: usize = w.shared_users.iter().map(Vec::len).sum();
        let back_pairs: usize = back.shared_users.iter().map(Vec::len).sum();
        assert_eq!(orig_pairs, back_pairs);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_out_of_range_interaction() {
        let w = generate_world(&tiny_world(203));
        let dir = temp_dir("bad_item");
        write_domain(&w.target, &dir).expect("write");
        // Append an interaction referencing a non-existent item.
        let path = dir.join("interactions.tsv");
        let mut content = fs::read_to_string(&path).unwrap();
        content.push_str("0\t999999\n");
        fs::write(&path, content).unwrap();
        let err = read_domain("x", &dir).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("item 999999"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_ragged_content() {
        let dir = temp_dir("ragged");
        fs::write(dir.join("user_content.tsv"), "0\t1 2 3\n1\t4 5\n").unwrap();
        fs::write(dir.join("item_content.tsv"), "0\t1 2 3\n").unwrap();
        fs::write(dir.join("interactions.tsv"), "0\t0\n").unwrap();
        let err = read_domain("x", &dir).expect_err("must reject ragged rows");
        assert!(err.to_string().contains("content width"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_duplicate_ids() {
        let dir = temp_dir("dup");
        fs::write(dir.join("user_content.tsv"), "0\t1 2\n0\t3 4\n").unwrap();
        fs::write(dir.join("item_content.tsv"), "0\t1 2\n").unwrap();
        fs::write(dir.join("interactions.tsv"), "").unwrap();
        let err = read_domain("x", &dir).expect_err("must reject duplicates");
        assert!(err.to_string().contains("duplicate id") || err.to_string().contains("not dense"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_interactions_are_deduplicated() {
        let dir = temp_dir("dedup");
        fs::write(dir.join("user_content.tsv"), "0\t1 2\n").unwrap();
        fs::write(dir.join("item_content.tsv"), "0\t1 2\n1\t3 4\n").unwrap();
        fs::write(dir.join("interactions.tsv"), "0\t1\n0\t0\n0\t1\n").unwrap();
        let d = read_domain("x", &dir).expect("read");
        assert_eq!(d.interactions[0], vec![0, 1]);
        let _ = fs::remove_dir_all(&dir);
    }
}

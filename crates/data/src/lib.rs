//! # metadpa-data
//!
//! **SynthAmazon**: a synthetic multi-domain implicit-feedback benchmark plus
//! the full evaluation protocol of the MetaDPA paper.
//!
//! The paper evaluates on Amazon review subsets (Electronics, Movies, Music
//! as sources; Books, CDs as targets). Those datasets cannot ship with this
//! repository, so this crate provides a *generative* replacement whose
//! mechanics mirror the properties the paper's experiments depend on:
//!
//! 1. **Latent preference transfer** — users have global latent tastes; each
//!    domain observes them through a domain-specific transform, so domains
//!    share signal (transferable) but not trivially (domain-specific).
//! 2. **Shared users** — each (source, target) pair shares a configurable
//!    set of users, the paper's transfer bridge (and bottleneck: it notes
//!    Books/Electronics share only ~5% of users).
//! 3. **Content/preference gap** — review bag-of-words vectors correlate
//!    with latent tastes but carry controlled noise, reproducing the
//!    "inconsistency between item content and user preferences" the paper
//!    motivates diverse augmentation with.
//! 4. **Long-tailed sparsity** — rating counts follow a skewed distribution
//!    so the ≥5-rating "existing/new" split of §III-A yields genuine
//!    cold-start users and items.
//!
//! The crate also implements the protocol machinery: existing/new splits,
//! the four problem settings (Warm, C-U, C-I, C-UI), support/query task
//! construction, leave-one-out evaluation with 99 sampled negatives, and the
//! shared-user adaptation pairs consumed by the Dual-CVAE block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptation;
pub mod config;
pub mod domain;
pub mod generator;
pub mod io;
pub mod presets;
pub mod splits;
pub mod stats;
pub mod stream;
pub mod task;

pub use adaptation::AdaptationPair;
pub use config::{DomainConfig, WorldConfig};
pub use domain::{Domain, World};
pub use generator::generate_world;
pub use splits::{Scenario, ScenarioKind, SplitConfig, Splitter};
pub use stats::{domain_stats, DomainStats};
pub use stream::{StreamConfig, StreamingDomainGenerator, UserChunk};
pub use task::{EvalInstance, Task};

//! Property-based tests for the SynthAmazon generator and protocol: the
//! invariants must hold for *any* reasonable configuration, not just the
//! presets.
//!
//! The randomized `proptest` suite is opt-in (`--features proptest`): the
//! build environment is offline, so the `proptest` crate cannot be a
//! default dev-dependency. To run it, restore `proptest = "1"` under
//! `[dev-dependencies]` and enable the feature. The `deterministic` module
//! below always compiles and checks the same invariants over a fixed grid
//! of world configurations.

use metadpa_data::adaptation::{build_adaptation_pairs, AdaptationConfig};
use metadpa_data::config::{DomainConfig, WorldConfig};
use metadpa_data::generator::generate_world;
use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

fn world_config(
    seed: u64,
    n_users: usize,
    n_items: usize,
    mean: f32,
    gap: f32,
    shared: usize,
) -> WorldConfig {
    let shared = shared.min(n_users / 2).max(2);
    WorldConfig {
        latent_dim: 6,
        content_dim: 16,
        n_topics: 4,
        content_gap: gap,
        target: DomainConfig::new("T", n_users, n_items, mean),
        sources: vec![DomainConfig::new("S", n_users / 2 + 10, n_items / 2 + 20, mean)],
        shared_users: vec![shared],
        seed,
    }
}

/// Fixed configuration grid standing in for proptest's generator.
fn config_grid() -> Vec<WorldConfig> {
    vec![
        world_config(0, 60, 40, 4.0, 0.0, 2),
        world_config(7, 100, 70, 6.5, 0.3, 12),
        world_config(42, 159, 99, 9.9, 0.89, 39),
        world_config(1234, 80, 55, 5.0, 0.5, 25),
    ]
}

mod deterministic {
    use super::*;

    /// Generated worlds always pass their own structural validation and
    /// basic sanity: every user has >= 1 rating, ids in range.
    #[test]
    fn generated_worlds_are_structurally_valid() {
        for cfg in config_grid() {
            let w = generate_world(&cfg);
            w.validate(); // panics on inconsistency
            assert_eq!(w.target.n_users(), cfg.target.n_users);
            assert_eq!(w.target.n_items(), cfg.target.n_items);
            assert!(w.target.interactions.iter().all(|v| !v.is_empty()));
            assert!(w.target.user_content.all_finite());
            assert!(w.target.item_content.all_finite());
        }
    }

    /// Generation is a pure function of its config.
    #[test]
    fn generation_deterministic() {
        for cfg in config_grid() {
            let a = generate_world(&cfg);
            let b = generate_world(&cfg);
            assert_eq!(a.target.interactions, b.target.interactions);
            assert_eq!(&a.sources[0].interactions, &b.sources[0].interactions);
        }
    }

    /// Every scenario's eval instances reference valid users/items, the
    /// positive was truly rated, and the negatives truly were not.
    #[test]
    fn scenario_instances_are_consistent() {
        for cfg in config_grid() {
            let w = generate_world(&cfg);
            let sp = Splitter::new(&w.target, SplitConfig::default());
            for kind in ScenarioKind::ALL {
                let s = sp.scenario(kind);
                for e in &s.eval {
                    assert!(e.user < w.target.n_users());
                    assert!(w.target.has_interaction(e.user, e.positive));
                    for &n in &e.negatives {
                        assert!(!w.target.has_interaction(e.user, n));
                    }
                }
                for t in s.train_tasks.iter().chain(s.finetune_tasks.iter()) {
                    for &(i, l) in t.support.iter().chain(t.query.iter()) {
                        assert!(i < w.target.n_items());
                        // Positive labels must correspond to real interactions.
                        if l == 1.0 {
                            assert!(w.target.has_interaction(t.user, i));
                        } else {
                            assert!(!w.target.has_interaction(t.user, i));
                        }
                    }
                }
            }
        }
    }

    /// The user partition is exact: existing + new covers all users,
    /// thresholds respected.
    #[test]
    fn partition_is_exact() {
        for cfg in config_grid() {
            for threshold in [2usize, 4, 7] {
                let w = generate_world(&cfg);
                let sp = Splitter::new(
                    &w.target,
                    SplitConfig { existing_threshold: threshold, ..SplitConfig::default() },
                );
                assert_eq!(sp.existing_users().len() + sp.new_users().len(), w.target.n_users());
                for &u in sp.existing_users() {
                    assert!(w.target.interactions[u].len() >= threshold);
                }
                for &u in sp.new_users() {
                    assert!(w.target.interactions[u].len() < threshold);
                }
            }
        }
    }

    /// Adaptation pairs: rating matrices are binary with rows matching the
    /// interaction lists, splits are disjoint.
    #[test]
    fn adaptation_pairs_are_consistent() {
        for cfg in config_grid() {
            let w = generate_world(&cfg);
            let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
            for p in &pairs {
                assert!(p.source_ratings.is_binary(), "implicit ratings stay 0/1");
                let mut rows: Vec<usize> =
                    p.train_rows.iter().chain(p.eval_rows.iter()).copied().collect();
                rows.sort_unstable();
                rows.dedup();
                assert_eq!(rows.len(), p.n_shared());
                // Row content matches interactions for the aligned target user.
                for (row, &tu) in p.target_user_ids.iter().enumerate() {
                    assert_eq!(p.target_ratings.row_nnz(row), w.target.interactions[tu].len());
                }
            }
        }
    }

    /// The warm scenario never leaks its eval positive into training tasks.
    #[test]
    fn warm_never_leaks() {
        for cfg in config_grid() {
            let w = generate_world(&cfg);
            let sp = Splitter::new(&w.target, SplitConfig::default());
            let s = sp.scenario(ScenarioKind::Warm);
            for e in &s.eval {
                for t in s.train_tasks.iter().filter(|t| t.user == e.user) {
                    assert!(t.support.iter().chain(t.query.iter()).all(|&(i, _)| i != e.positive));
                }
            }
        }
    }
}

#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    fn arb_world_config() -> impl Strategy<Value = WorldConfig> {
        (
            0u64..10_000, // seed
            60usize..160, // target users
            40usize..100, // target items
            4.0f32..10.0, // mean ratings
            0.0f32..0.9,  // content gap
            2usize..40,   // shared users
        )
            .prop_map(|(seed, n_users, n_items, mean, gap, shared)| {
                world_config(seed, n_users, n_items, mean, gap, shared)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated worlds always pass their own structural validation.
        #[test]
        fn generated_worlds_are_structurally_valid(cfg in arb_world_config()) {
            let w = generate_world(&cfg);
            w.validate(); // panics on inconsistency
            prop_assert_eq!(w.target.n_users(), cfg.target.n_users);
            prop_assert_eq!(w.target.n_items(), cfg.target.n_items);
            prop_assert!(w.target.interactions.iter().all(|v| !v.is_empty()));
            prop_assert!(w.target.user_content.all_finite());
            prop_assert!(w.target.item_content.all_finite());
        }

        /// Generation is a pure function of its config.
        #[test]
        fn generation_deterministic(cfg in arb_world_config()) {
            let a = generate_world(&cfg);
            let b = generate_world(&cfg);
            prop_assert_eq!(a.target.interactions, b.target.interactions);
            prop_assert_eq!(&a.sources[0].interactions, &b.sources[0].interactions);
        }

        /// Every scenario's eval instances reference valid users/items.
        #[test]
        fn scenario_instances_are_consistent(cfg in arb_world_config()) {
            let w = generate_world(&cfg);
            let sp = Splitter::new(&w.target, SplitConfig::default());
            for kind in ScenarioKind::ALL {
                let s = sp.scenario(kind);
                for e in &s.eval {
                    prop_assert!(e.user < w.target.n_users());
                    prop_assert!(w.target.has_interaction(e.user, e.positive));
                    for &n in &e.negatives {
                        prop_assert!(!w.target.has_interaction(e.user, n));
                    }
                }
                for t in s.train_tasks.iter().chain(s.finetune_tasks.iter()) {
                    for &(i, l) in t.support.iter().chain(t.query.iter()) {
                        prop_assert!(i < w.target.n_items());
                        if l == 1.0 {
                            prop_assert!(w.target.has_interaction(t.user, i));
                        } else {
                            prop_assert!(!w.target.has_interaction(t.user, i));
                        }
                    }
                }
            }
        }

        /// The user partition is exact.
        #[test]
        fn partition_is_exact(cfg in arb_world_config(), threshold in 2usize..8) {
            let w = generate_world(&cfg);
            let sp = Splitter::new(
                &w.target,
                SplitConfig { existing_threshold: threshold, ..SplitConfig::default() },
            );
            prop_assert_eq!(
                sp.existing_users().len() + sp.new_users().len(),
                w.target.n_users()
            );
            for &u in sp.existing_users() {
                prop_assert!(w.target.interactions[u].len() >= threshold);
            }
            for &u in sp.new_users() {
                prop_assert!(w.target.interactions[u].len() < threshold);
            }
        }

        /// Adaptation pairs stay binary and disjoint.
        #[test]
        fn adaptation_pairs_are_consistent(cfg in arb_world_config()) {
            let w = generate_world(&cfg);
            let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
            for p in &pairs {
                prop_assert!(p.source_ratings.is_binary(), "implicit ratings stay 0/1");
                let mut rows: Vec<usize> =
                    p.train_rows.iter().chain(p.eval_rows.iter()).copied().collect();
                rows.sort_unstable();
                rows.dedup();
                prop_assert_eq!(rows.len(), p.n_shared());
                for (row, &tu) in p.target_user_ids.iter().enumerate() {
                    prop_assert_eq!(p.target_ratings.row_nnz(row), w.target.interactions[tu].len());
                }
            }
        }

        /// The warm scenario never leaks its eval positive into training.
        #[test]
        fn warm_never_leaks(cfg in arb_world_config()) {
            let w = generate_world(&cfg);
            let sp = Splitter::new(&w.target, SplitConfig::default());
            let s = sp.scenario(ScenarioKind::Warm);
            for e in &s.eval {
                for t in s.train_tasks.iter().filter(|t| t.user == e.user) {
                    prop_assert!(t
                        .support
                        .iter()
                        .chain(t.query.iter())
                        .all(|&(i, _)| i != e.positive));
                }
            }
        }
    }
}

//! Label-noise meta-augmentation (Rajendran et al., NeurIPS 2020) — the
//! prior technique that motivates MetaDPA (paper §I).
//!
//! Meta-augmentation "adds noise to labels y without changing inputs x" to
//! turn non-mutually-exclusive task sets mutually-exclusive and prevent
//! memorization overfitting. MetaDPA's argument is that for
//! recommendation, *structured* diversity (ratings generated from other
//! domains' preference patterns) beats unstructured label noise. This
//! module implements the label-noise strategy so the claim is testable:
//! the `exp_augmentation_strategies` experiment compares
//!
//! * no augmentation (MeLU-style meta-training),
//! * label-noise augmentation (this module),
//! * diverse preference augmentation (the paper's Block 1+2).
//!
//! Noise model: for each of the k augmented copies of a task, every label
//! is shifted by an independent uniform offset in `[-scale, scale]` and
//! clamped to `[0, 1]` — labels stay valid soft targets for the BCE loss,
//! and two copies of the same task almost surely disagree on every label
//! (the mutual-exclusivity construction of the original method).

use metadpa_data::task::Task;
use metadpa_tensor::SeededRng;

/// Configuration of the label-noise augmenter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseAugConfig {
    /// Number of augmented copies per original task (plays the role of
    /// the k source domains in the DPA comparison).
    pub k: usize,
    /// Half-width of the uniform label offset.
    pub scale: f32,
    /// Seed for the noise stream.
    pub seed: u64,
}

impl Default for NoiseAugConfig {
    fn default() -> Self {
        Self { k: 3, scale: 0.3, seed: 0x401E }
    }
}

/// Builds `k` noise-augmented copies of every task.
///
/// Items and the support/query structure are untouched; only labels move.
///
/// # Panics
/// Panics if `scale` is negative.
pub fn build_noise_augmented_tasks(original: &[Task], config: &NoiseAugConfig) -> Vec<Task> {
    assert!(config.scale >= 0.0, "noise scale must be non-negative");
    let mut rng = SeededRng::new(config.seed);
    let mut out = Vec::with_capacity(original.len() * config.k);
    for copy in 0..config.k {
        let mut copy_rng = rng.fork(copy as u64);
        for task in original {
            let perturb = |pairs: &[(usize, f32)], rng: &mut SeededRng| {
                pairs
                    .iter()
                    .map(|&(item, label)| {
                        let offset = rng.uniform_range(-config.scale, config.scale);
                        (item, (label + offset).clamp(0.0, 1.0))
                    })
                    .collect()
            };
            out.push(Task {
                user: task.user,
                support: perturb(&task.support, &mut copy_rng),
                query: perturb(&task.query, &mut copy_rng),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_tasks() -> Vec<Task> {
        vec![
            Task { user: 0, support: vec![(0, 1.0), (1, 0.0)], query: vec![(2, 1.0)] },
            Task { user: 1, support: vec![(2, 0.0)], query: vec![(0, 1.0), (1, 0.0)] },
        ]
    }

    #[test]
    fn produces_k_copies_with_same_structure() {
        let cfg = NoiseAugConfig { k: 3, scale: 0.2, seed: 1 };
        let aug = build_noise_augmented_tasks(&toy_tasks(), &cfg);
        assert_eq!(aug.len(), 6);
        for (i, t) in aug.iter().enumerate() {
            let orig = &toy_tasks()[i % 2];
            assert_eq!(t.user, orig.user);
            assert_eq!(t.support.len(), orig.support.len());
            assert_eq!(t.query.len(), orig.query.len());
            // Items identical, labels moved.
            for (a, o) in t.support.iter().zip(orig.support.iter()) {
                assert_eq!(a.0, o.0);
            }
        }
    }

    #[test]
    fn labels_stay_in_unit_interval() {
        let cfg = NoiseAugConfig { k: 5, scale: 0.9, seed: 2 };
        let aug = build_noise_augmented_tasks(&toy_tasks(), &cfg);
        for t in &aug {
            for &(_, l) in t.support.iter().chain(t.query.iter()) {
                assert!((0.0..=1.0).contains(&l), "label {l} out of range");
            }
        }
    }

    #[test]
    fn copies_are_mutually_distinct() {
        // The mutual-exclusivity construction: two copies of the same task
        // should disagree on labels (with overwhelming probability).
        let cfg = NoiseAugConfig { k: 2, scale: 0.3, seed: 3 };
        let aug = build_noise_augmented_tasks(&toy_tasks(), &cfg);
        let (a, b) = (&aug[0], &aug[2]); // two copies of task 0
        assert_ne!(a.support, b.support);
    }

    #[test]
    fn zero_scale_reproduces_originals() {
        let cfg = NoiseAugConfig { k: 1, scale: 0.0, seed: 4 };
        let aug = build_noise_augmented_tasks(&toy_tasks(), &cfg);
        assert_eq!(aug, toy_tasks());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = NoiseAugConfig::default();
        assert_eq!(
            build_noise_augmented_tasks(&toy_tasks(), &cfg),
            build_noise_augmented_tasks(&toy_tasks(), &cfg)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_scale() {
        let cfg = NoiseAugConfig { scale: -0.1, ..NoiseAugConfig::default() };
        let _ = build_noise_augmented_tasks(&toy_tasks(), &cfg);
    }
}

//! Multi-source domain adaptation: k Dual-CVAEs trained independently,
//! one per (source, target) pair (paper §IV-A / §IV-B).
//!
//! The paper trains the k Dual-CVAEs "in parallel" — they share no
//! parameters, so training them sequentially here is mathematically
//! identical (and keeps every experiment single-threaded-deterministic).

use metadpa_data::adaptation::AdaptationPair;
use metadpa_nn::module::{restore, snapshot_into, zero_grad};
use metadpa_nn::optim::{global_grad_norm, Adam, Optimizer};
use metadpa_tensor::{Matrix, SeededRng};

use crate::dual_cvae::{DualCvae, DualCvaeConfig, DualCvaeLosses};
use crate::maml::{EpochRate, SentinelConfig, SentinelState, TrainAbort};

/// Training hyper-parameters for the adaptation phase.
#[derive(Clone, Copy, Debug)]
pub struct AdapterTrainConfig {
    /// Epochs over each pair's shared-user training rows.
    pub epochs: usize,
    /// Minibatch size (the paper uses B = 32).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for batching and reparameterization noise.
    pub seed: u64,
}

impl Default for AdapterTrainConfig {
    fn default() -> Self {
        Self { epochs: 40, batch_size: 32, lr: 1e-3, seed: 0xDA7A }
    }
}

/// Per-source training history.
#[derive(Clone, Debug)]
pub struct AdaptationReport {
    /// Source domain name.
    pub source_name: String,
    /// Mean training losses per epoch.
    pub train_losses: Vec<DualCvaeLosses>,
    /// Held-out losses after training.
    pub eval_losses: DualCvaeLosses,
}

/// k Dual-CVAEs plus their optimizers.
pub struct MultiSourceAdapter {
    duals: Vec<DualCvae>,
    optimizers: Vec<Adam>,
    train_config: AdapterTrainConfig,
}

impl MultiSourceAdapter {
    /// Builds one Dual-CVAE per adaptation pair.
    ///
    /// # Panics
    /// Panics if `pairs` is empty or any pair has no shared users.
    pub fn new(
        pairs: &[AdaptationPair],
        content_dim: usize,
        dual_config: DualCvaeConfig,
        train_config: AdapterTrainConfig,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(!pairs.is_empty(), "MultiSourceAdapter: need at least one source pair");
        let mut duals = Vec::with_capacity(pairs.len());
        let mut optimizers = Vec::with_capacity(pairs.len());
        for pair in pairs {
            assert!(
                pair.n_shared() >= 4,
                "MultiSourceAdapter: pair {} has only {} shared users after filtering",
                pair.source_name,
                pair.n_shared()
            );
            duals.push(DualCvae::new(
                pair.source_ratings.cols(),
                pair.target_ratings.cols(),
                content_dim,
                dual_config,
                rng,
            ));
            optimizers.push(Adam::new(train_config.lr));
        }
        Self { duals, optimizers, train_config }
    }

    /// Number of source domains (k).
    pub fn n_sources(&self) -> usize {
        self.duals.len()
    }

    /// Immutable access to the k Dual-CVAEs.
    pub fn duals(&self) -> &[DualCvae] {
        &self.duals
    }

    /// Trains every Dual-CVAE on its pair's training rows.
    ///
    /// # Panics
    /// Panics if `pairs` does not match the construction-time pair list.
    pub fn train(&mut self, pairs: &[AdaptationPair]) -> Vec<AdaptationReport> {
        self.train_checked(pairs, &SentinelConfig::default())
            .expect("train without fail_fast never aborts")
    }

    /// [`MultiSourceAdapter::train`] with anomaly sentinels: each epoch's
    /// total loss and post-step gradient norm run through `sentinels`
    /// (fresh loss window per source pair), typed `train_anomaly` events
    /// are emitted while observability is on, and with
    /// `sentinels.fail_fast` a fatal anomaly stops training with a
    /// [`TrainAbort`] — the affected Dual-CVAE is rewound to its state at
    /// the start of the aborted epoch.
    ///
    /// While observability is on, every epoch emits one structured
    /// `train_epoch` record (phase `"cvae"`, per-term losses, grad norm,
    /// wall time, rolling-rate ETA across the remaining pairs). Parameter
    /// updates are identical whether observability is on or off.
    ///
    /// # Panics
    /// Panics if `pairs` does not match the construction-time pair list.
    pub fn train_checked(
        &mut self,
        pairs: &[AdaptationPair],
        sentinels: &SentinelConfig,
    ) -> Result<Vec<AdaptationReport>, TrainAbort> {
        assert_eq!(pairs.len(), self.duals.len(), "MultiSourceAdapter::train: pair count changed");
        let cfg = self.train_config;
        let mut reports = Vec::with_capacity(pairs.len());
        let mut rate = EpochRate::new();
        let mut theta_entry: Vec<Matrix> = Vec::new();
        for (idx, pair) in pairs.iter().enumerate() {
            let _pair_span = metadpa_obs::span!("adaptation.pair.{}", pair.source_name);
            let mut rng = SeededRng::new(cfg.seed.wrapping_add(idx as u64 * 7919));
            let dual = &mut self.duals[idx];
            let opt = &mut self.optimizers[idx];
            // Content is small (`n_shared x content_dim`) and gathered once;
            // the rating rows stay in the pair's CSR storage and densify
            // only into the per-batch workspaces below — no dense
            // `n_shared x n_items` matrix ever exists on this path.
            let x_s = pair.source_content.gather_rows(&pair.train_rows);
            let x_t = pair.target_content.gather_rows(&pair.train_rows);
            let n = pair.train_rows.len();
            let mut order: Vec<usize> = (0..n).collect();
            let (mut br_s, mut br_t) = (Matrix::default(), Matrix::default());
            let (mut bx_s, mut bx_t) = (Matrix::default(), Matrix::default());
            let mut batch_rows: Vec<usize> = Vec::with_capacity(cfg.batch_size.max(2));
            let mut train_losses = Vec::with_capacity(cfg.epochs);
            // Each pair is an independent model: its loss series gets a
            // fresh sentinel window.
            let mut sentinel = SentinelState::new("cvae");
            for epoch in 0..cfg.epochs {
                let _epoch_span = metadpa_obs::span!("adaptation.epoch");
                let telemetry = metadpa_obs::enabled();
                let sentinel_active = sentinels.fail_fast || telemetry;
                let epoch_start = telemetry.then(std::time::Instant::now);
                if sentinels.fail_fast {
                    snapshot_into(dual, &mut theta_entry);
                }
                rng.shuffle(&mut order);
                let mut batch_losses = Vec::new();
                for chunk in order.chunks(cfg.batch_size.max(2)) {
                    if chunk.len() < 2 {
                        continue; // InfoNCE terms need in-batch negatives.
                    }
                    // Map shuffled positions back to pair rows, then scatter
                    // the sparse rating rows into the reused workspaces.
                    batch_rows.clear();
                    batch_rows.extend(chunk.iter().map(|&c| pair.train_rows[c]));
                    pair.gather_ratings_into(&batch_rows, &mut br_s, &mut br_t);
                    x_s.gather_rows_into(chunk, &mut bx_s);
                    x_t.gather_rows_into(chunk, &mut bx_t);
                    zero_grad(dual);
                    batch_losses.push(dual.train_step(&br_s, &br_t, &bx_s, &bx_t, &mut rng));
                    opt.step(dual);
                }
                let mean = DualCvaeLosses::mean(&batch_losses);
                let total = mean.total(dual.config().beta1, dual.config().beta2);
                // Read-only tap on the last batch's accumulated gradients.
                let grad_norm = if sentinel_active { global_grad_norm(dual) } else { 0.0 };
                metadpa_obs::event!(
                    "dual_cvae.epoch",
                    "source" => pair.source_name.as_str(),
                    "epoch" => epoch,
                    "reconstruction" => mean.reconstruction,
                    "kl" => mean.kl,
                    "mse_align" => mean.mse_align,
                    "cross_reconstruction" => mean.cross_reconstruction,
                    "mdi" => mean.mdi,
                    "me" => mean.me,
                    "total" => total,
                );
                if let Some(start) = epoch_start {
                    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    let remaining = (pairs.len() - idx - 1) * cfg.epochs + (cfg.epochs - epoch - 1);
                    let eta_ms = rate.eta_ms(wall_ms, remaining);
                    let mut ev = metadpa_obs::Event::new("train_epoch", "train_epoch");
                    ev.push("phase", "cvae");
                    ev.push("source", pair.source_name.as_str());
                    ev.push("epoch", epoch);
                    ev.push("epochs", cfg.epochs);
                    ev.push("loss", total as f64);
                    ev.push("reconstruction", mean.reconstruction as f64);
                    ev.push("kl", mean.kl as f64);
                    ev.push("mse_align", mean.mse_align as f64);
                    ev.push("cross_reconstruction", mean.cross_reconstruction as f64);
                    ev.push("mdi", mean.mdi as f64);
                    ev.push("me", mean.me as f64);
                    ev.push("grad_norm", grad_norm);
                    ev.push("wall_ms", wall_ms);
                    ev.push("eta_ms", eta_ms);
                    metadpa_obs::emit(ev);
                }
                train_losses.push(mean);
                if sentinel_active {
                    if let Some(anomaly) = sentinel.check(sentinels, epoch, total as f64, grad_norm)
                    {
                        if sentinels.fail_fast {
                            restore(dual, &theta_entry);
                            return Err(TrainAbort { anomaly });
                        }
                    }
                }
            }
            let eval_losses = if pair.eval_rows.is_empty() {
                DualCvaeLosses::default()
            } else {
                let (er_s, er_t, ex_s, ex_t) = pair.eval_batch();
                dual.eval_losses(&er_s, &er_t, &ex_s, &ex_t)
            };
            reports.push(AdaptationReport {
                source_name: pair.source_name.clone(),
                train_losses,
                eval_losses,
            });
        }
        Ok(reports)
    }

    /// Runs the augmentation path of every Dual-CVAE over the full
    /// target-domain user content, returning k generated rating matrices
    /// (`n_users x n_target_items`, values in `[0, 1]`).
    pub fn generate_diverse_ratings(&mut self, target_user_content: &Matrix) -> Vec<Matrix> {
        self.duals.iter_mut().map(|d| d.generate_target_ratings(target_user_content)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_data::adaptation::{build_adaptation_pairs, AdaptationConfig};
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;

    fn small_dual_config() -> DualCvaeConfig {
        DualCvaeConfig { hidden_dim: 24, latent_dim: 6, critic_dim: 8, ..DualCvaeConfig::default() }
    }

    fn quick_train_config() -> AdapterTrainConfig {
        AdapterTrainConfig { epochs: 4, batch_size: 16, lr: 2e-3, seed: 1 }
    }

    #[test]
    fn trains_one_dual_per_source_and_losses_drop() {
        let w = generate_world(&tiny_world(21));
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let mut rng = SeededRng::new(2);
        let mut adapter = MultiSourceAdapter::new(
            &pairs,
            w.target.user_content.cols(),
            small_dual_config(),
            quick_train_config(),
            &mut rng,
        );
        assert_eq!(adapter.n_sources(), 2);
        let reports = adapter.train(&pairs);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            let first = r.train_losses.first().unwrap().reconstruction;
            let last = r.train_losses.last().unwrap().reconstruction;
            assert!(
                last < first,
                "{}: reconstruction should drop over epochs ({first} -> {last})",
                r.source_name
            );
            assert!(r.eval_losses.reconstruction.is_finite());
        }
    }

    #[test]
    fn generated_ratings_have_k_diverse_variants() {
        let w = generate_world(&tiny_world(22));
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let mut rng = SeededRng::new(3);
        let mut adapter = MultiSourceAdapter::new(
            &pairs,
            w.target.user_content.cols(),
            small_dual_config(),
            quick_train_config(),
            &mut rng,
        );
        let _ = adapter.train(&pairs);
        let generated = adapter.generate_diverse_ratings(&w.target.user_content);
        assert_eq!(generated.len(), 2);
        for g in &generated {
            assert_eq!(g.shape(), (w.target.n_users(), w.target.n_items()));
            assert!(g.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // The two sources' generations should not be identical (diversity).
        assert_ne!(generated[0], generated[1]);
    }

    #[test]
    fn training_is_deterministic() {
        let w = generate_world(&tiny_world(23));
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let run = || {
            let mut rng = SeededRng::new(5);
            let mut adapter = MultiSourceAdapter::new(
                &pairs,
                w.target.user_content.cols(),
                small_dual_config(),
                quick_train_config(),
                &mut rng,
            );
            let _ = adapter.train(&pairs);
            adapter.generate_diverse_ratings(&w.target.user_content)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "need at least one source")]
    fn rejects_empty_pair_list() {
        let mut rng = SeededRng::new(1);
        let _ =
            MultiSourceAdapter::new(&[], 8, small_dual_config(), quick_train_config(), &mut rng);
    }
}

//! The preference prediction model of Eq. 11 (paper §IV-C).
//!
//! A fully connected embedding layer encodes the user content `c_u` and
//! item content `c_i` into dense embeddings `x_u`, `x_i`; a multi-layer
//! network scores their concatenation. Implicit feedback means the output
//! is a single logit trained with binary cross-entropy.
//!
//! [`PreferenceModel`] implements [`Module`] over an input of
//! `[c_u ; c_i]` rows (one row per candidate item, the user row tiled), so
//! the generic optimizer / snapshot / restore machinery of `metadpa-nn`
//! — and therefore MAML — drives it without special cases.

use metadpa_nn::dense::Dense;
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{Mode, Module};
use metadpa_nn::param::Param;
use metadpa_nn::workspace::Workspace;
use metadpa_tensor::{Matrix, SeededRng};

// Workspace slots: forward scratch, backward scratch, scoring scratch. Each
// buffer keeps its high-water capacity, so repeated steps allocate nothing.
const WS_CU: usize = 0;
const WS_CI: usize = 1;
const WS_XU: usize = 2;
const WS_XI: usize = 3;
const WS_CAT: usize = 4;
const WS_DCAT: usize = 5;
const WS_DXU: usize = 6;
const WS_DXI: usize = 7;
const WS_DCU: usize = 8;
const WS_DCI: usize = 9;
const WS_SCORE_IN: usize = 10;
const WS_SCORE_OUT: usize = 11;
const WS_SLOTS: usize = 12;

/// Architecture hyper-parameters of the preference model.
#[derive(Clone, Copy, Debug)]
pub struct PreferenceConfig {
    /// Content vector dimensionality (both users and items).
    pub content_dim: usize,
    /// Dense embedding size for each side.
    pub embed_dim: usize,
    /// Hidden widths of the scorer MLP (two hidden layers in the paper's
    /// "2-layer network" description).
    pub hidden: [usize; 2],
}

impl Default for PreferenceConfig {
    fn default() -> Self {
        Self { content_dim: 48, embed_dim: 32, hidden: [48, 24] }
    }
}

/// The embedding + multi-layer scorer of Eq. 11.
pub struct PreferenceModel {
    config: PreferenceConfig,
    user_embed: Dense,
    item_embed: Dense,
    scorer: Mlp,
    ws: Workspace,
}

impl PreferenceModel {
    /// Builds the model.
    pub fn new(config: PreferenceConfig, rng: &mut SeededRng) -> Self {
        let user_embed = Dense::new(config.content_dim, config.embed_dim, rng);
        let item_embed = Dense::new(config.content_dim, config.embed_dim, rng);
        let scorer = Mlp::new(
            &[2 * config.embed_dim, config.hidden[0], config.hidden[1], 1],
            Activation::Relu,
            rng,
        );
        Self { config, user_embed, item_embed, scorer, ws: Workspace::new(WS_SLOTS) }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> PreferenceConfig {
        self.config
    }

    /// Assembles the `[c_u ; c_i]` input batch for one user and a set of
    /// candidate items: the user's content row is tiled across all rows.
    pub fn assemble_input(user_content: &[f32], item_content: &Matrix, items: &[usize]) -> Matrix {
        let mut input = Matrix::default();
        Self::assemble_input_into(user_content, item_content, items, &mut input);
        input
    }

    /// [`PreferenceModel::assemble_input`] into a reused caller buffer.
    pub fn assemble_input_into(
        user_content: &[f32],
        item_content: &Matrix,
        items: &[usize],
        out: &mut Matrix,
    ) {
        let d = user_content.len();
        out.resize_for_overwrite(items.len(), d + item_content.cols());
        for (row, &item) in items.iter().enumerate() {
            out.row_mut(row)[..d].copy_from_slice(user_content);
            out.row_mut(row)[d..].copy_from_slice(item_content.row(item));
        }
    }

    /// Scores one user against candidate items, returning per-item logits.
    pub fn score_items(
        &mut self,
        user_content: &[f32],
        item_content: &Matrix,
        items: &[usize],
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.score_items_into(user_content, item_content, items, &mut out);
        out
    }

    /// [`PreferenceModel::score_items`] into a reused caller vector —
    /// bit-identical, and the whole path (input assembly, forward pass)
    /// runs on workspace buffers, so steady-state catalogue ranking
    /// allocates nothing.
    pub fn score_items_into(
        &mut self,
        user_content: &[f32],
        item_content: &Matrix,
        items: &[usize],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        if items.is_empty() {
            return;
        }
        let mut input = self.ws.take(WS_SCORE_IN);
        let mut logits = self.ws.take(WS_SCORE_OUT);
        Self::assemble_input_into(user_content, item_content, items, &mut input);
        self.forward_into(&mut input, Mode::Eval, &mut logits);
        out.extend_from_slice(logits.as_slice());
        self.ws.put(WS_SCORE_IN, input);
        self.ws.put(WS_SCORE_OUT, logits);
    }

    /// Runs the item embedding layer over a full content table, returning
    /// one `x_i` row per item — the precompute half of the serving fast
    /// path. Row `i` is bit-identical to the `x_i` the full
    /// [`PreferenceModel::score_items_into`] pass computes for item `i`:
    /// every matmul kernel accumulates each output element over the inner
    /// dimension in ascending order from its own row of the input, so
    /// embedding all rows at once equals embedding any subset row-by-row.
    ///
    /// Only valid for the parameters the model holds *now* — the serving
    /// layer recomputes (or refuses to use) the table when it restores
    /// different weights.
    pub fn embed_items(&mut self, item_content: &Matrix) -> Matrix {
        assert_eq!(
            item_content.cols(),
            self.config.content_dim,
            "PreferenceModel::embed_items: item content width {} != content_dim {}",
            item_content.cols(),
            self.config.content_dim
        );
        // `forward_into` steals its input buffer for the backward cache, so
        // hand it a copy. This runs once per artifact load, not per request.
        let mut input = item_content.clone();
        let mut out = Matrix::default();
        self.item_embed.forward_into(&mut input, Mode::Eval, &mut out);
        out
    }

    /// Scores one user against candidate items from a precomputed item
    /// embedding table (see [`PreferenceModel::embed_items`]) —
    /// bit-identical to [`PreferenceModel::score_items_into`] for the same
    /// parameters, but skipping the per-request item embedding matmul and
    /// the tiled `[c_u ; c_i]` assembly. The user side is embedded as a
    /// single row (per-row accumulation makes that equal to embedding the
    /// tiled batch), then the scorer runs over `[x_u ; x_i]` rows built
    /// straight from the table. Zero steady-state allocations.
    pub fn score_embedded_into(
        &mut self,
        user_content: &[f32],
        item_embeds: &Matrix,
        items: &[usize],
        out: &mut Vec<f32>,
    ) {
        assert_eq!(
            user_content.len(),
            self.config.content_dim,
            "PreferenceModel::score_embedded_into: user content width {} != content_dim {}",
            user_content.len(),
            self.config.content_dim
        );
        assert_eq!(
            item_embeds.cols(),
            self.config.embed_dim,
            "PreferenceModel::score_embedded_into: embedding width {} != embed_dim {}",
            item_embeds.cols(),
            self.config.embed_dim
        );
        out.clear();
        if items.is_empty() {
            return;
        }
        let e = self.config.embed_dim;
        let mut cu = self.ws.take(WS_CU);
        let mut xu = self.ws.take(WS_XU);
        let mut cat = self.ws.take(WS_CAT);
        let mut logits = self.ws.take(WS_SCORE_OUT);
        cu.resize_for_overwrite(1, self.config.content_dim);
        cu.row_mut(0).copy_from_slice(user_content);
        self.user_embed.forward_into(&mut cu, Mode::Eval, &mut xu);
        cat.resize_for_overwrite(items.len(), 2 * e);
        for (row, &item) in items.iter().enumerate() {
            let r = cat.row_mut(row);
            r[..e].copy_from_slice(xu.row(0));
            r[e..].copy_from_slice(item_embeds.row(item));
        }
        self.scorer.forward_into(&mut cat, Mode::Eval, &mut logits);
        out.extend_from_slice(logits.as_slice());
        self.ws.put(WS_CU, cu);
        self.ws.put(WS_XU, xu);
        self.ws.put(WS_CAT, cat);
        self.ws.put(WS_SCORE_OUT, logits);
    }
}

impl Module for PreferenceModel {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        assert_eq!(
            input.cols(),
            2 * self.config.content_dim,
            "PreferenceModel::forward: input must be [c_u ; c_i] rows of width {}",
            2 * self.config.content_dim
        );
        let (cu, ci) = input.hsplit(self.config.content_dim);
        let xu = self.user_embed.forward(&cu, mode);
        let xi = self.item_embed.forward(&ci, mode);
        self.scorer.forward(&xu.hstack(&xi), mode)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let d_concat = self.scorer.backward(grad_output);
        let (dxu, dxi) = d_concat.hsplit(self.config.embed_dim);
        let dcu = self.user_embed.backward(&dxu);
        let dci = self.item_embed.backward(&dxi);
        dcu.hstack(&dci)
    }

    fn forward_into(&mut self, input: &mut Matrix, mode: Mode, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            2 * self.config.content_dim,
            "PreferenceModel::forward: input must be [c_u ; c_i] rows of width {}",
            2 * self.config.content_dim
        );
        let mut cu = self.ws.take(WS_CU);
        let mut ci = self.ws.take(WS_CI);
        let mut xu = self.ws.take(WS_XU);
        let mut xi = self.ws.take(WS_XI);
        let mut cat = self.ws.take(WS_CAT);
        input.hsplit_into(self.config.content_dim, &mut cu, &mut ci);
        self.user_embed.forward_into(&mut cu, mode, &mut xu);
        self.item_embed.forward_into(&mut ci, mode, &mut xi);
        xu.hstack_into(&xi, &mut cat);
        self.scorer.forward_into(&mut cat, mode, out);
        self.ws.put(WS_CU, cu);
        self.ws.put(WS_CI, ci);
        self.ws.put(WS_XU, xu);
        self.ws.put(WS_XI, xi);
        self.ws.put(WS_CAT, cat);
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let mut dcat = self.ws.take(WS_DCAT);
        let mut dxu = self.ws.take(WS_DXU);
        let mut dxi = self.ws.take(WS_DXI);
        let mut dcu = self.ws.take(WS_DCU);
        let mut dci = self.ws.take(WS_DCI);
        self.scorer.backward_into(grad_output, &mut dcat);
        dcat.hsplit_into(self.config.embed_dim, &mut dxu, &mut dxi);
        self.user_embed.backward_into(&mut dxu, &mut dcu);
        self.item_embed.backward_into(&mut dxi, &mut dci);
        dcu.hstack_into(&dci, out);
        self.ws.put(WS_DCAT, dcat);
        self.ws.put(WS_DXU, dxu);
        self.ws.put(WS_DXI, dxi);
        self.ws.put(WS_DCU, dcu);
        self.ws.put(WS_DCI, dci);
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.user_embed.visit_params(visitor);
        self.item_embed.visit_params(visitor);
        self.scorer.visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_nn::grad_check::check_module;
    use metadpa_nn::loss::bce_with_logits;
    use metadpa_nn::module::zero_grad;
    use metadpa_nn::optim::{Adam, Optimizer};

    fn small() -> PreferenceConfig {
        PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] }
    }

    #[test]
    fn scores_one_logit_per_item() {
        let mut rng = SeededRng::new(1);
        let mut model = PreferenceModel::new(small(), &mut rng);
        let item_content = rng.uniform_matrix(10, 6, 0.0, 1.0);
        let user = vec![0.1; 6];
        let scores = model.score_items(&user, &item_content, &[0, 3, 7]);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert!(model.score_items(&user, &item_content, &[]).is_empty());
    }

    #[test]
    fn assemble_input_tiles_user_row() {
        let item_content = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let input = PreferenceModel::assemble_input(&[9.0, 8.0], &item_content, &[1, 0]);
        assert_eq!(input.row(0), &[9.0, 8.0, 3.0, 4.0]);
        assert_eq!(input.row(1), &[9.0, 8.0, 1.0, 2.0]);
    }

    #[test]
    fn gradients_verify_numerically() {
        let mut rng = SeededRng::new(2);
        let mut model = PreferenceModel::new(small(), &mut rng);
        let input = rng.normal_matrix(4, 12);
        let upstream = rng.normal_matrix(4, 1);
        let report = check_module(&mut model, &input, &upstream, 1e-2);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn can_fit_a_simple_preference_rule() {
        // Label = 1 iff user content and item content point the same way.
        let mut rng = SeededRng::new(3);
        let mut model = PreferenceModel::new(small(), &mut rng);
        let n = 40;
        let mut input = Matrix::zeros(n, 12);
        let mut labels = Matrix::zeros(n, 1);
        for r in 0..n {
            let sign_u = if r % 2 == 0 { 1.0 } else { -1.0 };
            let sign_i = if (r / 2) % 2 == 0 { 1.0 } else { -1.0 };
            for c in 0..6 {
                input.set(r, c, sign_u * (0.5 + 0.1 * c as f32));
                input.set(r, 6 + c, sign_i * (0.5 + 0.05 * c as f32));
            }
            labels.set(r, 0, if sign_u == sign_i { 1.0 } else { 0.0 });
        }
        let mut opt = Adam::new(0.02);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            zero_grad(&mut model);
            let logits = model.forward(&input, Mode::Train);
            let (loss, grad) = bce_with_logits(&logits, &labels);
            let _ = model.backward(&grad);
            opt.step(&mut model);
            last = loss;
        }
        assert!(last < 0.1, "preference rule should be learnable, loss {last}");
    }

    #[test]
    fn into_paths_are_bit_identical_to_allocating_paths() {
        // Two models with identical weights: one driven through the
        // allocating Module API, one through the workspace `_into` API.
        // Outputs, input gradients and parameter gradients must agree
        // bitwise — this is what lets MAML and serve use the zero-alloc
        // path without re-validating determinism.
        let mut rng = SeededRng::new(7);
        let mut a = PreferenceModel::new(small(), &mut rng);
        let mut b = PreferenceModel::new(small(), &mut SeededRng::new(0));
        metadpa_nn::module::restore(&mut b, &metadpa_nn::module::snapshot(&mut a));

        let item_content = rng.uniform_matrix(10, 6, -1.0, 1.0);
        let user = vec![0.2; 6];
        let items = [0usize, 2, 5, 9];
        let (mut input_b, mut y_b, mut grad_b, mut dx_b) =
            (Matrix::default(), Matrix::default(), Matrix::default(), Matrix::default());
        for step in 0..3 {
            zero_grad(&mut a);
            zero_grad(&mut b);
            let input = PreferenceModel::assemble_input(&user, &item_content, &items);
            let y_a = a.forward(&input, Mode::Train);
            let grad_a = y_a.map(|v| v * 0.1 + step as f32);
            let dx_a = a.backward(&grad_a);

            PreferenceModel::assemble_input_into(&user, &item_content, &items, &mut input_b);
            b.forward_into(&mut input_b, Mode::Train, &mut y_b);
            y_a.map_into(|v| v * 0.1 + step as f32, &mut grad_b);
            b.backward_into(&mut grad_b, &mut dx_b);

            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&y_a), bits(&y_b), "forward drifts at step {step}");
            assert_eq!(bits(&dx_a), bits(&dx_b), "backward drifts at step {step}");
            let mut grads_a = Vec::new();
            let mut grads_b = Vec::new();
            a.visit_params(&mut |p| grads_a.push(p.grad.clone()));
            b.visit_params(&mut |p| grads_b.push(p.grad.clone()));
            for (ga, gb) in grads_a.iter().zip(&grads_b) {
                assert_eq!(bits(ga), bits(gb), "param grads drift at step {step}");
            }
        }

        // Scoring: the `_into` variant equals the allocating one bitwise.
        let scores = a.score_items(&user, &item_content, &items);
        let mut scores_into = Vec::new();
        b.score_items_into(&user, &item_content, &items, &mut scores_into);
        assert_eq!(
            scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scores_into.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn embedded_scoring_is_bit_identical_to_the_full_pass() {
        // The serving fast path: precomputed item embeddings + single-row
        // user embedding must reproduce score_items_into exactly — under
        // the scalar kernels, the exact SIMD kernels, and the fused
        // kernels alike (each policy is bit-deterministic on its own, and
        // the fast path only reorders *which rows* go through the same
        // per-row accumulation).
        use metadpa_tensor::simd::{self, Policy};
        let mut rng = SeededRng::new(11);
        let mut model = PreferenceModel::new(small(), &mut rng);
        let item_content = rng.uniform_matrix(37, 6, -1.0, 1.0);
        let user: Vec<f32> = (0..6).map(|c| 0.3 * c as f32 - 0.9).collect();
        let items: Vec<usize> = (0..37).rev().collect();
        for policy in [Policy::ForcedScalar, Policy::Auto, Policy::Fused] {
            simd::with_policy(policy, || {
                let embeds = model.embed_items(&item_content);
                let full = model.score_items(&user, &item_content, &items);
                let mut fast = Vec::new();
                model.score_embedded_into(&user, &embeds, &items, &mut fast);
                assert_eq!(
                    full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "fast path drifts under {policy:?}"
                );
                model.score_embedded_into(&user, &embeds, &[], &mut fast);
                assert!(fast.is_empty());
            });
        }
    }

    #[test]
    #[should_panic(expected = "input must be")]
    fn forward_rejects_wrong_width() {
        let mut rng = SeededRng::new(4);
        let mut model = PreferenceModel::new(small(), &mut rng);
        let _ = model.forward(&Matrix::zeros(1, 5), Mode::Train);
    }
}

//! First-order MAML over preference tasks (paper §III-B, §IV-C, Eq. 1).
//!
//! The training objective is
//! `min_θ Σ_{T_u} L(θ - α ∇_θ L(θ, S_u), Q_u)`:
//! an inner loop adapts θ to each task's support set with a few SGD steps,
//! an outer loop updates θ from the adapted parameters' query-set loss.
//!
//! We use the first-order approximation (FOMAML): the outer gradient is the
//! query-set gradient evaluated at the adapted parameters, skipping the
//! second-derivative term. This is the standard practical choice for
//! MeLU-style recommenders (see DESIGN.md substitutions) and preserves the
//! inner-adapt / outer-generalize structure the paper's claims rest on.
//!
//! Meta-testing (§V-A2) reuses the inner loop: [`MetaLearner::fine_tune`]
//! adapts the trained θ on cold-start support sets, after which the model
//! scores the query candidates.

use std::sync::Mutex;

use metadpa_data::task::Task;
use metadpa_nn::loss::bce_with_logits_into;
use metadpa_nn::module::{
    accumulate_grads, restore, snapshot, snapshot_grads, snapshot_into, zero_grad, Mode, Module,
};
use metadpa_nn::optim::{Adam, Optimizer, Sgd};
use metadpa_tensor::{Matrix, Pool, SeededRng};

use crate::preference::{PreferenceConfig, PreferenceModel};

/// Reusable buffers for one worker's inner-loop passes: the item list,
/// label/input/logit/gradient matrices of `run_set_on`. Every field keeps
/// its high-water capacity, so after the first task a whole inner loop runs
/// without allocating.
#[derive(Default)]
struct TaskScratch {
    items: Vec<usize>,
    labels: Matrix,
    input: Matrix,
    logits: Matrix,
    grad: Matrix,
    dx: Matrix,
}

/// Computes the loss and (optionally) backpropagates one labelled set on
/// `model`. Free-standing (rather than a `MetaLearner` method) so the
/// parallel meta-batch path can run it against per-worker scratch models.
fn run_set_on(
    model: &mut PreferenceModel,
    user_content: &[f32],
    item_content: &Matrix,
    set: &[(usize, f32)],
    backprop: bool,
    scratch: &mut TaskScratch,
) -> f32 {
    scratch.items.clear();
    scratch.items.extend(set.iter().map(|&(i, _)| i));
    scratch.labels.resize_for_overwrite(set.len(), 1);
    for (slot, &(_, label)) in scratch.labels.as_mut_slice().iter_mut().zip(set) {
        *slot = label;
    }
    PreferenceModel::assemble_input_into(
        user_content,
        item_content,
        &scratch.items,
        &mut scratch.input,
    );
    model.forward_into(&mut scratch.input, Mode::Train, &mut scratch.logits);
    let loss = bce_with_logits_into(&scratch.logits, &scratch.labels, &mut scratch.grad);
    if backprop {
        model.backward_into(&mut scratch.grad, &mut scratch.dx);
    }
    loss
}

/// Inner loop: adapts `model` to one task's support set with `steps` SGD
/// steps at rate `inner_lr`. Returns the pre-adaptation support loss.
fn adapt_on(
    model: &mut PreferenceModel,
    inner_lr: f32,
    user_content: &[f32],
    item_content: &Matrix,
    task: &Task,
    steps: usize,
    scratch: &mut TaskScratch,
) -> f32 {
    let sgd = Sgd::new(inner_lr);
    let mut first_loss = 0.0;
    for step in 0..steps {
        zero_grad(model);
        let loss = run_set_on(model, user_content, item_content, &task.support, true, scratch);
        if step == 0 {
            first_loss = loss;
        }
        model.visit_params(&mut |p| sgd.step_param(p));
    }
    first_loss
}

/// One FOMAML task, self-contained: restores θ into `model`, runs the inner
/// loop on the support set, and takes the query gradient at the adapted
/// parameters. Returns `(query_grads, query_loss, support_loss)`.
///
/// The model's forward/backward passes are RNG-free and `restore`
/// overwrites every trainable parameter, so running this against any model
/// of the same architecture — `self.model` serially, or a scratch clone on
/// a pool worker — produces bit-identical gradients.
fn fomaml_task_grads(
    model: &mut PreferenceModel,
    config: &MamlConfig,
    theta: &[Matrix],
    user_content: &[f32],
    item_content: &Matrix,
    task: &Task,
    scratch: &mut TaskScratch,
) -> (Vec<Matrix>, f32, f32) {
    restore(model, theta);
    let support_loss = adapt_on(
        model,
        config.inner_lr,
        user_content,
        item_content,
        task,
        config.inner_steps,
        scratch,
    );
    zero_grad(model);
    let query_loss = run_set_on(model, user_content, item_content, &task.query, true, scratch);
    // Retained allocation: the harvested gradients are moved into the
    // meta-gradient fold and must outlive this call's scratch model.
    let grads = snapshot_grads(model);
    (grads, query_loss, support_loss)
}

/// Anomaly-sentinel thresholds for the training loops (DESIGN.md §11).
///
/// Detection works on the per-epoch loss series and the epoch's
/// meta-gradient norm — values the training loop computes anyway — so it
/// is deterministic and independent of the observability switch. Typed
/// `train_anomaly` events are only *emitted* while observability is on;
/// with `fail_fast` set, a fatal anomaly additionally stops training with
/// a [`TrainAbort`] whether or not anything is being recorded.
#[derive(Clone, Copy, Debug)]
pub struct SentinelConfig {
    /// Epochs in the divergence/plateau detection window.
    pub window: usize,
    /// Relative loss increase over the window that flags divergence:
    /// `loss[e] > loss[e-window] * (1 + divergence_ratio)`.
    pub divergence_ratio: f64,
    /// Relative improvement floor under which the window is reported as a
    /// plateau; `0.0` disables plateau detection (the default — late
    /// epochs of a converged run legitimately plateau).
    pub plateau_epsilon: f64,
    /// Stop training with a typed [`TrainAbort`] on a fatal anomaly
    /// (NaN/Inf loss or gradient norm, divergence) instead of burning the
    /// remaining epochs. Plateaus are advisory and never fail-fast.
    pub fail_fast: bool,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self { window: 5, divergence_ratio: 0.5, plateau_epsilon: 0.0, fail_fast: false }
    }
}

/// A detected training anomaly (the payload of `train_anomaly` events and
/// of the fail-fast [`TrainAbort`]).
#[derive(Clone, Debug, PartialEq)]
pub enum TrainAnomaly {
    /// An epoch's loss left the finite range.
    NonFiniteLoss {
        /// Which loop flagged it (`"maml"` / `"cvae"`).
        phase: &'static str,
        /// Epoch index the anomaly surfaced at.
        epoch: usize,
        /// The offending loss value.
        value: f64,
    },
    /// The epoch's gradient norm left the finite range.
    NonFiniteGradNorm {
        /// Which loop flagged it.
        phase: &'static str,
        /// Epoch index the anomaly surfaced at.
        epoch: usize,
    },
    /// Loss rose past the windowed divergence threshold.
    Divergence {
        /// Which loop flagged it.
        phase: &'static str,
        /// Epoch index the anomaly surfaced at.
        epoch: usize,
        /// Loss at the start of the window.
        from: f64,
        /// Loss now.
        to: f64,
    },
    /// Loss improvement over the window fell under the plateau floor.
    Plateau {
        /// Which loop flagged it.
        phase: &'static str,
        /// Epoch index the anomaly surfaced at.
        epoch: usize,
        /// Loss at the start of the window.
        from: f64,
        /// Loss now.
        to: f64,
    },
}

impl TrainAnomaly {
    /// Stable slug used as the `train_anomaly` event name.
    pub fn kind(&self) -> &'static str {
        match self {
            TrainAnomaly::NonFiniteLoss { .. } => "non_finite_loss",
            TrainAnomaly::NonFiniteGradNorm { .. } => "non_finite_grad_norm",
            TrainAnomaly::Divergence { .. } => "divergence",
            TrainAnomaly::Plateau { .. } => "plateau",
        }
    }

    /// The training loop that flagged the anomaly.
    pub fn phase(&self) -> &'static str {
        match self {
            TrainAnomaly::NonFiniteLoss { phase, .. }
            | TrainAnomaly::NonFiniteGradNorm { phase, .. }
            | TrainAnomaly::Divergence { phase, .. }
            | TrainAnomaly::Plateau { phase, .. } => phase,
        }
    }

    /// The epoch the anomaly surfaced at.
    pub fn epoch(&self) -> usize {
        match self {
            TrainAnomaly::NonFiniteLoss { epoch, .. }
            | TrainAnomaly::NonFiniteGradNorm { epoch, .. }
            | TrainAnomaly::Divergence { epoch, .. }
            | TrainAnomaly::Plateau { epoch, .. } => *epoch,
        }
    }

    /// Whether the anomaly stops a `fail_fast` run.
    fn is_fatal(&self) -> bool {
        !matches!(self, TrainAnomaly::Plateau { .. })
    }
}

/// Typed fail-fast error returned by the `*_checked` training entry
/// points. The model's parameters are intact: the loop rewinds θ to its
/// state at the start of the aborted epoch before returning.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainAbort {
    /// The fatal anomaly that stopped the run.
    pub anomaly: TrainAnomaly,
}

impl std::fmt::Display for TrainAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.anomaly {
            TrainAnomaly::NonFiniteLoss { phase, epoch, value } => {
                write!(f, "{phase} training aborted: non-finite loss {value} at epoch {epoch}")
            }
            TrainAnomaly::NonFiniteGradNorm { phase, epoch } => {
                write!(f, "{phase} training aborted: non-finite gradient norm at epoch {epoch}")
            }
            TrainAnomaly::Divergence { phase, epoch, from, to } => {
                write!(f, "{phase} training aborted: loss diverged {from} -> {to} at epoch {epoch}")
            }
            TrainAnomaly::Plateau { phase, epoch, from, to } => {
                write!(f, "{phase} training aborted: loss plateau {from} -> {to} at epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainAbort {}

/// Emits one typed `train_anomaly` record (no-op while observability is
/// off).
fn emit_anomaly(anomaly: &TrainAnomaly) {
    if !metadpa_obs::enabled() {
        return;
    }
    let mut ev = metadpa_obs::Event::new("train_anomaly", anomaly.kind().to_string());
    ev.push("phase", anomaly.phase());
    ev.push("epoch", anomaly.epoch() as u64);
    match anomaly {
        TrainAnomaly::NonFiniteLoss { value, .. } => ev.push("value", *value),
        TrainAnomaly::NonFiniteGradNorm { .. } => {}
        TrainAnomaly::Divergence { from, to, .. } | TrainAnomaly::Plateau { from, to, .. } => {
            ev.push("from", *from);
            ev.push("to", *to);
        }
    }
    metadpa_obs::emit(ev);
}

/// Rolling loss-series watcher shared by the MAML and CVAE loops: feeds
/// each epoch's loss/grad-norm through the sentinel thresholds, emits the
/// typed events, and hands the first *fatal* anomaly back for fail-fast
/// handling.
pub(crate) struct SentinelState {
    phase: &'static str,
    losses: Vec<f64>,
}

impl SentinelState {
    pub(crate) fn new(phase: &'static str) -> Self {
        Self { phase, losses: Vec::new() }
    }

    pub(crate) fn check(
        &mut self,
        cfg: &SentinelConfig,
        epoch: usize,
        loss: f64,
        grad_norm: f64,
    ) -> Option<TrainAnomaly> {
        self.losses.push(loss);
        let mut fatal: Option<TrainAnomaly> = None;
        let flag = |anomaly: TrainAnomaly, fatal: &mut Option<TrainAnomaly>| {
            emit_anomaly(&anomaly);
            if anomaly.is_fatal() && fatal.is_none() {
                *fatal = Some(anomaly);
            }
        };
        let phase = self.phase;
        if !loss.is_finite() {
            flag(TrainAnomaly::NonFiniteLoss { phase, epoch, value: loss }, &mut fatal);
        }
        if !grad_norm.is_finite() {
            flag(TrainAnomaly::NonFiniteGradNorm { phase, epoch }, &mut fatal);
        }
        if cfg.window > 0 && self.losses.len() > cfg.window && loss.is_finite() {
            let from = self.losses[self.losses.len() - 1 - cfg.window];
            if from.is_finite() {
                let scale = from.abs().max(1e-12);
                if loss > from + cfg.divergence_ratio * scale {
                    flag(TrainAnomaly::Divergence { phase, epoch, from, to: loss }, &mut fatal);
                } else if cfg.plateau_epsilon > 0.0 && from - loss < cfg.plateau_epsilon * scale {
                    flag(TrainAnomaly::Plateau { phase, epoch, from, to: loss }, &mut fatal);
                }
            }
        }
        fatal
    }
}

/// Rolling per-epoch wall-time window backing the `eta_ms` field of
/// `train_epoch` records: ETA = mean of the last few epoch durations ×
/// epochs remaining. Only driven while observability is on.
pub(crate) struct EpochRate {
    durs_ms: std::collections::VecDeque<f64>,
}

impl EpochRate {
    const WINDOW: usize = 8;

    pub(crate) fn new() -> Self {
        Self { durs_ms: std::collections::VecDeque::with_capacity(Self::WINDOW) }
    }

    pub(crate) fn eta_ms(&mut self, wall_ms: f64, remaining_epochs: usize) -> f64 {
        if self.durs_ms.len() == Self::WINDOW {
            self.durs_ms.pop_front();
        }
        self.durs_ms.push_back(wall_ms);
        let mean = self.durs_ms.iter().sum::<f64>() / self.durs_ms.len() as f64;
        mean * remaining_epochs as f64
    }
}

/// MAML hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MamlConfig {
    /// Inner-loop (local update) learning rate α.
    pub inner_lr: f32,
    /// Outer-loop (global update) Adam learning rate.
    pub outer_lr: f32,
    /// Inner gradient steps per task.
    pub inner_steps: usize,
    /// Tasks per outer update.
    pub meta_batch: usize,
    /// Passes over the task set.
    pub epochs: usize,
    /// Gradient steps used when fine-tuning at meta-test time.
    pub finetune_steps: usize,
    /// Seed for task shuffling.
    pub seed: u64,
}

impl Default for MamlConfig {
    fn default() -> Self {
        Self {
            inner_lr: 0.1,
            outer_lr: 3e-3,
            inner_steps: 2,
            meta_batch: 8,
            epochs: 25,
            finetune_steps: 10,
            seed: 0x3A31,
        }
    }
}

/// Per-epoch meta-training diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct MetaEpochReport {
    /// Mean query loss *after* inner adaptation (the meta objective).
    pub post_adapt_query_loss: f32,
    /// Mean support loss before adaptation (for monitoring).
    pub pre_adapt_support_loss: f32,
}

/// The MAML-trained preference meta-learner.
pub struct MetaLearner {
    model: PreferenceModel,
    config: MamlConfig,
}

impl MetaLearner {
    /// Builds a fresh meta-learner.
    pub fn new(
        pref_config: PreferenceConfig,
        maml_config: MamlConfig,
        rng: &mut SeededRng,
    ) -> Self {
        Self { model: PreferenceModel::new(pref_config, rng), config: maml_config }
    }

    /// Immutable access to the underlying preference model.
    pub fn model(&self) -> &PreferenceModel {
        &self.model
    }

    /// Mutable access (used by the evaluation harness for state snapshots).
    pub fn model_mut(&mut self) -> &mut PreferenceModel {
        &mut self.model
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> MamlConfig {
        self.config
    }

    /// Builds an independent learner with identical parameters and
    /// hyper-parameters. The construction seed is irrelevant — `restore`
    /// overwrites every trainable parameter — so the fork scores
    /// bit-identically to `self` (the serve artifact reload relies on the
    /// same property).
    pub fn fork(&mut self) -> MetaLearner {
        let params = snapshot(&mut self.model);
        let mut fork = MetaLearner::new(self.model.config(), self.config, &mut SeededRng::new(0));
        restore(&mut fork.model, &params);
        fork
    }

    /// Meta-trains on a task set (originals plus augmented tasks, Eqs. 9-10).
    ///
    /// `user_content` and `item_content` are the target domain's content
    /// matrices; tasks index into them.
    ///
    /// Returns one report per epoch. Infallible: runs with the default
    /// (non-fail-fast) sentinels via [`MetaLearner::meta_train_checked`],
    /// which is bit-identical to the historical loop.
    pub fn meta_train(
        &mut self,
        tasks: &[Task],
        user_content: &Matrix,
        item_content: &Matrix,
    ) -> Vec<MetaEpochReport> {
        self.meta_train_checked(tasks, user_content, item_content, &SentinelConfig::default())
            .expect("meta_train without fail_fast never aborts")
    }

    /// [`MetaLearner::meta_train`] with anomaly sentinels: each epoch's
    /// query loss and meta-gradient norm run through `sentinels`, typed
    /// `train_anomaly` events are emitted while observability is on, and
    /// with `sentinels.fail_fast` a fatal anomaly stops training with a
    /// [`TrainAbort`] — θ is rewound to its state at the start of the
    /// aborted epoch, so the model stays usable.
    ///
    /// While observability is on, every epoch additionally emits one
    /// structured `train_epoch` record (losses, grad norm, wall time,
    /// rolling-rate ETA). The parameter updates themselves are identical
    /// whether observability is on or off and at any thread count.
    pub fn meta_train_checked(
        &mut self,
        tasks: &[Task],
        user_content: &Matrix,
        item_content: &Matrix,
        sentinels: &SentinelConfig,
    ) -> Result<Vec<MetaEpochReport>, TrainAbort> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        let _train_span = metadpa_obs::span!("maml.meta_train");
        metadpa_obs::event!(
            "maml.start",
            "tasks" => tasks.len(),
            "epochs" => self.config.epochs,
            "inner_steps" => self.config.inner_steps,
            "meta_batch" => self.config.meta_batch,
        );
        let mut rng = SeededRng::new(self.config.seed);
        let mut outer = Adam::new(self.config.outer_lr);
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        let mut reports = Vec::with_capacity(self.config.epochs);
        // θ snapshot buffer, reused across meta-batches (the per-batch
        // snapshot itself is the rewind contract and stays).
        let mut theta: Vec<Matrix> = Vec::new();
        // Inner-loop buffers for the serial path, and a pool of
        // (scratch model, buffers) pairs for the parallel path. Workers
        // check a pair out per chunk and return it, so models are built
        // once per pool lifetime, not once per meta-batch; `restore`
        // overwrites every parameter, so reuse is exact.
        let mut serial_scratch = TaskScratch::default();
        let worker_scratch: Mutex<Vec<(PreferenceModel, TaskScratch)>> = Mutex::new(Vec::new());
        // Sentinel/telemetry state. θ is additionally snapshotted at epoch
        // entry when fail-fast is armed so an abort can rewind cleanly.
        let mut sentinel = SentinelState::new("maml");
        let mut rate = EpochRate::new();
        let mut theta_entry: Vec<Matrix> = Vec::new();

        for epoch in 0..self.config.epochs {
            let _epoch_span = metadpa_obs::span!("maml.epoch");
            let telemetry = metadpa_obs::enabled();
            let sentinel_active = sentinels.fail_fast || telemetry;
            let epoch_start = telemetry.then(std::time::Instant::now);
            if sentinels.fail_fast {
                snapshot_into(&mut self.model, &mut theta_entry);
            }
            let mut epoch_grad_norm = 0.0f64;
            rng.shuffle(&mut order);
            let mut query_total = 0.0f64;
            let mut support_total = 0.0f64;
            let mut n_tasks = 0usize;

            for chunk in order.chunks(self.config.meta_batch) {
                snapshot_into(&mut self.model, &mut theta);
                let usable: Vec<usize> = chunk
                    .iter()
                    .copied()
                    .filter(|&t| !tasks[t].support.is_empty() && !tasks[t].query.is_empty())
                    .collect();

                // Per-task FOMAML gradients. The tasks of one meta-batch
                // are independent (each starts from θ), so they fan out
                // across the pool; each worker adapts a private scratch
                // model rebuilt from θ. Results come back in task order
                // and the meta-gradient is folded below in that order, so
                // the outer update is bit-identical at any thread count.
                let results: Vec<(Vec<Matrix>, f32, f32)> = {
                    let _inner_span = metadpa_obs::span!("maml.inner_loop");
                    let pool = Pool::current();
                    if pool.threads() > 1 && usable.len() > 1 {
                        let config = self.config;
                        let pref_config = self.model.config();
                        let theta = &theta;
                        let worker_scratch = &worker_scratch;
                        pool.map_chunks(usable.len(), |range| {
                            let mut entry = worker_scratch
                                .lock()
                                .expect("worker scratch pool poisoned")
                                .pop()
                                .unwrap_or_else(|| {
                                    (
                                        PreferenceModel::new(pref_config, &mut SeededRng::new(0)),
                                        TaskScratch::default(),
                                    )
                                });
                            let (scratch_model, task_scratch) = &mut entry;
                            let out = range
                                .map(|j| {
                                    let task = &tasks[usable[j]];
                                    fomaml_task_grads(
                                        scratch_model,
                                        &config,
                                        theta,
                                        user_content.row(task.user),
                                        item_content,
                                        task,
                                        task_scratch,
                                    )
                                })
                                .collect::<Vec<_>>();
                            worker_scratch
                                .lock()
                                .expect("worker scratch pool poisoned")
                                .push(entry);
                            out
                        })
                        .into_iter()
                        .flat_map(|(_, v)| v)
                        .collect()
                    } else {
                        usable
                            .iter()
                            .map(|&t_idx| {
                                let task = &tasks[t_idx];
                                fomaml_task_grads(
                                    &mut self.model,
                                    &self.config,
                                    &theta,
                                    user_content.row(task.user),
                                    item_content,
                                    task,
                                    &mut serial_scratch,
                                )
                            })
                            .collect()
                    }
                };

                // Deterministic fold: task order, on this thread.
                let used = results.len();
                let mut meta_grads: Option<Vec<Matrix>> = None;
                for (grads, query_loss, support_loss) in results {
                    match &mut meta_grads {
                        None => meta_grads = Some(grads),
                        Some(acc) => {
                            for (a, g) in acc.iter_mut().zip(grads.iter()) {
                                a.add_inplace(g);
                            }
                        }
                    }
                    query_total += query_loss as f64;
                    support_total += support_loss as f64;
                    n_tasks += 1;
                }

                // Outer update from θ with the averaged meta-gradient.
                let _outer_span = metadpa_obs::span!("maml.outer_update");
                restore(&mut self.model, &theta);
                if let Some(mut grads) = meta_grads {
                    let inv = 1.0 / used as f32;
                    for g in &mut grads {
                        g.map_inplace(|v| v * inv);
                    }
                    if sentinel_active {
                        // Read-only norm of the averaged meta-gradient; the
                        // epoch reports the largest chunk (NaN is sticky —
                        // f64::max would silently drop it).
                        let mut sq = 0.0f64;
                        for g in &grads {
                            let n = g.frobenius_norm() as f64;
                            sq += n * n;
                        }
                        let norm = sq.sqrt();
                        epoch_grad_norm = if norm.is_nan() || epoch_grad_norm.is_nan() {
                            f64::NAN
                        } else {
                            epoch_grad_norm.max(norm)
                        };
                    }
                    zero_grad(&mut self.model);
                    accumulate_grads(&mut self.model, &grads);
                    outer.step(&mut self.model);
                }
            }

            let report = MetaEpochReport {
                post_adapt_query_loss: (query_total / n_tasks.max(1) as f64) as f32,
                pre_adapt_support_loss: (support_total / n_tasks.max(1) as f64) as f32,
            };
            metadpa_obs::event!(
                "maml.epoch",
                "epoch" => epoch,
                "post_adapt_query_loss" => report.post_adapt_query_loss,
                "pre_adapt_support_loss" => report.pre_adapt_support_loss,
                "tasks_used" => n_tasks,
            );
            if let Some(start) = epoch_start {
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let eta_ms = rate.eta_ms(wall_ms, self.config.epochs - epoch - 1);
                let mut ev = metadpa_obs::Event::new("train_epoch", "train_epoch");
                ev.push("phase", "maml");
                ev.push("epoch", epoch);
                ev.push("epochs", self.config.epochs);
                ev.push("loss", report.post_adapt_query_loss as f64);
                ev.push("query_loss", report.post_adapt_query_loss as f64);
                ev.push("support_loss", report.pre_adapt_support_loss as f64);
                ev.push("grad_norm", epoch_grad_norm);
                ev.push("tasks", n_tasks);
                ev.push("wall_ms", wall_ms);
                ev.push("eta_ms", eta_ms);
                metadpa_obs::emit(ev);
            }
            reports.push(report);
            if sentinel_active {
                if let Some(anomaly) = sentinel.check(
                    sentinels,
                    epoch,
                    report.post_adapt_query_loss as f64,
                    epoch_grad_norm,
                ) {
                    if sentinels.fail_fast {
                        restore(&mut self.model, &theta_entry);
                        return Err(TrainAbort { anomaly });
                    }
                }
            }
        }
        Ok(reports)
    }

    /// Meta-testing adaptation: fine-tunes the current parameters on the
    /// support sets of the given tasks (the paper fine-tunes the trained
    /// model with "a few ratings" before cold-start evaluation).
    ///
    /// Unlike meta-training this mutates the model in place; the harness
    /// snapshots/restores around it.
    pub fn fine_tune(&mut self, tasks: &[Task], user_content: &Matrix, item_content: &Matrix) {
        let _span = metadpa_obs::span!("maml.fine_tune");
        let sgd = Sgd::new(self.config.inner_lr);
        let mut scratch = TaskScratch::default();
        for _ in 0..self.config.finetune_steps {
            for task in tasks {
                if task.support.is_empty() {
                    continue;
                }
                let uc = user_content.row(task.user);
                zero_grad(&mut self.model);
                let _ = run_set_on(
                    &mut self.model,
                    uc,
                    item_content,
                    &task.support,
                    true,
                    &mut scratch,
                );
                self.model.visit_params(&mut |p| sgd.step_param(p));
            }
        }
    }

    /// Scores candidate items for a user (higher is better).
    pub fn score(
        &mut self,
        user_content: &[f32],
        item_content: &Matrix,
        items: &[usize],
    ) -> Vec<f32> {
        self.model.score_items(user_content, item_content, items)
    }

    /// [`MetaLearner::score`] into a reused caller vector — bit-identical,
    /// zero allocations in steady state (the serve catalogue-ranking path).
    pub fn score_into(
        &mut self,
        user_content: &[f32],
        item_content: &Matrix,
        items: &[usize],
        out: &mut Vec<f32>,
    ) {
        self.model.score_items_into(user_content, item_content, items, out);
    }

    /// Precomputes the item embedding table for the model's current
    /// parameters — see [`PreferenceModel::embed_items`].
    pub fn embed_items(&mut self, item_content: &Matrix) -> Matrix {
        self.model.embed_items(item_content)
    }

    /// [`MetaLearner::score_into`] from a precomputed item embedding table
    /// — bit-identical to the full pass for the same parameters, see
    /// [`PreferenceModel::score_embedded_into`].
    pub fn score_embedded_into(
        &mut self,
        user_content: &[f32],
        item_embeds: &Matrix,
        items: &[usize],
        out: &mut Vec<f32>,
    ) {
        self.model.score_embedded_into(user_content, item_embeds, items, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> (PreferenceConfig, MamlConfig) {
        (
            PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] },
            MamlConfig {
                inner_lr: 0.1,
                outer_lr: 5e-3,
                inner_steps: 1,
                meta_batch: 4,
                epochs: 8,
                finetune_steps: 3,
                seed: 1,
            },
        )
    }

    /// A toy task universe: user u likes item i iff their content vectors
    /// agree in sign on the first coordinate.
    fn toy_tasks(
        rng: &mut SeededRng,
        n_users: usize,
        n_items: usize,
    ) -> (Vec<Task>, Matrix, Matrix) {
        let user_content = Matrix::from_fn(n_users, 6, |u, c| {
            let sign = if u % 2 == 0 { 1.0 } else { -1.0 };
            sign * (0.3 + 0.1 * c as f32) + 0.01 * rng.normal()
        });
        let item_content = Matrix::from_fn(n_items, 6, |i, c| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            sign * (0.3 + 0.05 * c as f32) + 0.01 * rng.normal()
        });
        let mut tasks = Vec::new();
        for u in 0..n_users {
            let mut pairs: Vec<(usize, f32)> =
                (0..n_items).map(|i| (i, if (u % 2) == (i % 2) { 1.0 } else { 0.0 })).collect();
            rng.shuffle(&mut pairs);
            let (s, q) = pairs.split_at(n_items / 2);
            tasks.push(Task { user: u, support: s.to_vec(), query: q.to_vec() });
        }
        (tasks, user_content, item_content)
    }

    #[test]
    fn meta_training_reduces_post_adaptation_query_loss() {
        let mut rng = SeededRng::new(2);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let (tasks, uc, ic) = toy_tasks(&mut rng, 12, 10);
        let reports = learner.meta_train(&tasks, &uc, &ic);
        assert_eq!(reports.len(), 8);
        let first = reports.first().unwrap().post_adapt_query_loss;
        let last = reports.last().unwrap().post_adapt_query_loss;
        assert!(last < first, "meta objective should improve: {first} -> {last}");
    }

    #[test]
    fn fine_tuning_adapts_to_an_unseen_user() {
        // Train on even-user tasks; fine-tune on an odd user's support; the
        // score ordering must flip to match the odd user's preference. The
        // seed is pinned to the in-tree xoshiro256++ streams.
        let mut rng = SeededRng::new(4);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let (tasks, uc, ic) = toy_tasks(&mut rng, 12, 10);
        let train: Vec<Task> = tasks.iter().filter(|t| t.user % 2 == 0).cloned().collect();
        let _ = learner.meta_train(&train, &uc, &ic);

        let cold = tasks.iter().find(|t| t.user % 2 == 1).unwrap().clone();
        learner.fine_tune(std::slice::from_ref(&cold), &uc, &ic);
        let scores = learner.score(uc.row(cold.user), &ic, &[0, 1]);
        // Odd users like odd items: item 1 must outscore item 0.
        assert!(
            scores[1] > scores[0],
            "fine-tuned model should prefer odd items for odd users: {scores:?}"
        );
    }

    #[test]
    fn meta_train_on_empty_tasks_is_a_noop() {
        let mut rng = SeededRng::new(4);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let uc = Matrix::zeros(1, 6);
        let ic = Matrix::zeros(1, 6);
        assert!(learner.meta_train(&[], &uc, &ic).is_empty());
    }

    #[test]
    fn tasks_with_empty_sets_are_skipped() {
        let mut rng = SeededRng::new(5);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let uc = Matrix::zeros(2, 6);
        let ic = Matrix::zeros(3, 6);
        let tasks = vec![
            Task { user: 0, support: vec![], query: vec![(0, 1.0)] },
            Task { user: 1, support: vec![(1, 1.0)], query: vec![] },
        ];
        let reports = learner.meta_train(&tasks, &uc, &ic);
        // Every task was skipped -> losses are 0 (no contribution).
        assert!(reports.iter().all(|r| r.post_adapt_query_loss == 0.0));
    }

    #[test]
    fn meta_training_is_deterministic() {
        let run = || {
            let mut rng = SeededRng::new(6);
            let (pc, mc) = toy_config();
            let mut learner = MetaLearner::new(pc, mc, &mut rng);
            let (tasks, uc, ic) = toy_tasks(&mut rng, 8, 8);
            let _ = learner.meta_train(&tasks, &uc, &ic);
            learner.score(uc.row(0), &ic, &[0, 1, 2, 3])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn meta_training_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            metadpa_tensor::pool::with_threads(threads, || {
                let mut rng = SeededRng::new(6);
                let (pc, mc) = toy_config();
                let mut learner = MetaLearner::new(pc, mc, &mut rng);
                let (tasks, uc, ic) = toy_tasks(&mut rng, 9, 8);
                let _ = learner.meta_train(&tasks, &uc, &ic);
                snapshot(learner.model_mut())
            })
        };
        let serial = run(1);
        for threads in [2, 7] {
            let parallel = run(threads);
            assert_eq!(serial.len(), parallel.len());
            for (layer, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
                for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "θ layer {layer} element {i} drifts at threads={threads}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn sentinels_flag_divergence_and_non_finite_but_keep_plateau_advisory() {
        let cfg = SentinelConfig {
            window: 2,
            divergence_ratio: 0.5,
            plateau_epsilon: 1e-3,
            fail_fast: true,
        };
        let mut s = SentinelState::new("maml");
        assert!(s.check(&cfg, 0, 1.0, 0.1).is_none());
        assert!(s.check(&cfg, 1, 0.9, 0.1).is_none());
        let fatal = s.check(&cfg, 2, 1.9, 0.1).expect("a 90% loss rise is a divergence");
        assert_eq!(fatal.kind(), "divergence");

        let mut s = SentinelState::new("maml");
        assert_eq!(s.check(&cfg, 0, f64::NAN, 0.1).map(|a| a.kind()), Some("non_finite_loss"));

        let mut s = SentinelState::new("maml");
        assert_eq!(
            s.check(&cfg, 0, 1.0, f64::INFINITY).map(|a| a.kind()),
            Some("non_finite_grad_norm")
        );

        // A flat loss series is a plateau: reported, never fatal.
        let mut s = SentinelState::new("maml");
        assert!(s.check(&cfg, 0, 1.0, 0.1).is_none());
        assert!(s.check(&cfg, 1, 1.0, 0.1).is_none());
        assert!(s.check(&cfg, 2, 1.0, 0.1).is_none(), "plateau must stay advisory");
    }

    #[test]
    fn fail_fast_abort_on_poisoned_theta_leaves_parameters_intact() {
        let mut rng = SeededRng::new(11);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let (tasks, uc, ic) = toy_tasks(&mut rng, 8, 8);
        // Poison θ: every forward pass now yields a NaN loss.
        learner.model_mut().visit_params(&mut |p| {
            if !p.value.is_empty() {
                p.value.as_mut_slice()[0] = f32::NAN;
            }
        });
        let before = snapshot(learner.model_mut());
        let sentinels = SentinelConfig { fail_fast: true, ..SentinelConfig::default() };
        let err = learner
            .meta_train_checked(&tasks, &uc, &ic, &sentinels)
            .expect_err("a NaN loss must trip the fail-fast sentinel");
        assert_eq!(err.anomaly.kind(), "non_finite_loss");
        assert_eq!(err.anomaly.epoch(), 0);
        assert_eq!(err.anomaly.phase(), "maml");
        let after = snapshot(learner.model_mut());
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "abort must rewind θ intact");
            }
        }
    }

    #[test]
    fn fork_scores_bit_identically() {
        let mut rng = SeededRng::new(9);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let (tasks, uc, ic) = toy_tasks(&mut rng, 8, 8);
        let _ = learner.meta_train(&tasks, &uc, &ic);
        let mut fork = learner.fork();
        let items: Vec<usize> = (0..8).collect();
        assert_eq!(learner.score(uc.row(3), &ic, &items), fork.score(uc.row(3), &ic, &items));
    }
}

//! First-order MAML over preference tasks (paper §III-B, §IV-C, Eq. 1).
//!
//! The training objective is
//! `min_θ Σ_{T_u} L(θ - α ∇_θ L(θ, S_u), Q_u)`:
//! an inner loop adapts θ to each task's support set with a few SGD steps,
//! an outer loop updates θ from the adapted parameters' query-set loss.
//!
//! We use the first-order approximation (FOMAML): the outer gradient is the
//! query-set gradient evaluated at the adapted parameters, skipping the
//! second-derivative term. This is the standard practical choice for
//! MeLU-style recommenders (see DESIGN.md substitutions) and preserves the
//! inner-adapt / outer-generalize structure the paper's claims rest on.
//!
//! Meta-testing (§V-A2) reuses the inner loop: [`MetaLearner::fine_tune`]
//! adapts the trained θ on cold-start support sets, after which the model
//! scores the query candidates.

use std::sync::Mutex;

use metadpa_data::task::Task;
use metadpa_nn::loss::bce_with_logits_into;
use metadpa_nn::module::{
    accumulate_grads, restore, snapshot, snapshot_grads, snapshot_into, zero_grad, Mode, Module,
};
use metadpa_nn::optim::{Adam, Optimizer, Sgd};
use metadpa_tensor::{Matrix, Pool, SeededRng};

use crate::preference::{PreferenceConfig, PreferenceModel};

/// Reusable buffers for one worker's inner-loop passes: the item list,
/// label/input/logit/gradient matrices of `run_set_on`. Every field keeps
/// its high-water capacity, so after the first task a whole inner loop runs
/// without allocating.
#[derive(Default)]
struct TaskScratch {
    items: Vec<usize>,
    labels: Matrix,
    input: Matrix,
    logits: Matrix,
    grad: Matrix,
    dx: Matrix,
}

/// Computes the loss and (optionally) backpropagates one labelled set on
/// `model`. Free-standing (rather than a `MetaLearner` method) so the
/// parallel meta-batch path can run it against per-worker scratch models.
fn run_set_on(
    model: &mut PreferenceModel,
    user_content: &[f32],
    item_content: &Matrix,
    set: &[(usize, f32)],
    backprop: bool,
    scratch: &mut TaskScratch,
) -> f32 {
    scratch.items.clear();
    scratch.items.extend(set.iter().map(|&(i, _)| i));
    scratch.labels.resize_for_overwrite(set.len(), 1);
    for (slot, &(_, label)) in scratch.labels.as_mut_slice().iter_mut().zip(set) {
        *slot = label;
    }
    PreferenceModel::assemble_input_into(
        user_content,
        item_content,
        &scratch.items,
        &mut scratch.input,
    );
    model.forward_into(&mut scratch.input, Mode::Train, &mut scratch.logits);
    let loss = bce_with_logits_into(&scratch.logits, &scratch.labels, &mut scratch.grad);
    if backprop {
        model.backward_into(&mut scratch.grad, &mut scratch.dx);
    }
    loss
}

/// Inner loop: adapts `model` to one task's support set with `steps` SGD
/// steps at rate `inner_lr`. Returns the pre-adaptation support loss.
fn adapt_on(
    model: &mut PreferenceModel,
    inner_lr: f32,
    user_content: &[f32],
    item_content: &Matrix,
    task: &Task,
    steps: usize,
    scratch: &mut TaskScratch,
) -> f32 {
    let sgd = Sgd::new(inner_lr);
    let mut first_loss = 0.0;
    for step in 0..steps {
        zero_grad(model);
        let loss = run_set_on(model, user_content, item_content, &task.support, true, scratch);
        if step == 0 {
            first_loss = loss;
        }
        model.visit_params(&mut |p| sgd.step_param(p));
    }
    first_loss
}

/// One FOMAML task, self-contained: restores θ into `model`, runs the inner
/// loop on the support set, and takes the query gradient at the adapted
/// parameters. Returns `(query_grads, query_loss, support_loss)`.
///
/// The model's forward/backward passes are RNG-free and `restore`
/// overwrites every trainable parameter, so running this against any model
/// of the same architecture — `self.model` serially, or a scratch clone on
/// a pool worker — produces bit-identical gradients.
fn fomaml_task_grads(
    model: &mut PreferenceModel,
    config: &MamlConfig,
    theta: &[Matrix],
    user_content: &[f32],
    item_content: &Matrix,
    task: &Task,
    scratch: &mut TaskScratch,
) -> (Vec<Matrix>, f32, f32) {
    restore(model, theta);
    let support_loss = adapt_on(
        model,
        config.inner_lr,
        user_content,
        item_content,
        task,
        config.inner_steps,
        scratch,
    );
    zero_grad(model);
    let query_loss = run_set_on(model, user_content, item_content, &task.query, true, scratch);
    // Retained allocation: the harvested gradients are moved into the
    // meta-gradient fold and must outlive this call's scratch model.
    let grads = snapshot_grads(model);
    (grads, query_loss, support_loss)
}

/// MAML hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MamlConfig {
    /// Inner-loop (local update) learning rate α.
    pub inner_lr: f32,
    /// Outer-loop (global update) Adam learning rate.
    pub outer_lr: f32,
    /// Inner gradient steps per task.
    pub inner_steps: usize,
    /// Tasks per outer update.
    pub meta_batch: usize,
    /// Passes over the task set.
    pub epochs: usize,
    /// Gradient steps used when fine-tuning at meta-test time.
    pub finetune_steps: usize,
    /// Seed for task shuffling.
    pub seed: u64,
}

impl Default for MamlConfig {
    fn default() -> Self {
        Self {
            inner_lr: 0.1,
            outer_lr: 3e-3,
            inner_steps: 2,
            meta_batch: 8,
            epochs: 25,
            finetune_steps: 10,
            seed: 0x3A31,
        }
    }
}

/// Per-epoch meta-training diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct MetaEpochReport {
    /// Mean query loss *after* inner adaptation (the meta objective).
    pub post_adapt_query_loss: f32,
    /// Mean support loss before adaptation (for monitoring).
    pub pre_adapt_support_loss: f32,
}

/// The MAML-trained preference meta-learner.
pub struct MetaLearner {
    model: PreferenceModel,
    config: MamlConfig,
}

impl MetaLearner {
    /// Builds a fresh meta-learner.
    pub fn new(
        pref_config: PreferenceConfig,
        maml_config: MamlConfig,
        rng: &mut SeededRng,
    ) -> Self {
        Self { model: PreferenceModel::new(pref_config, rng), config: maml_config }
    }

    /// Immutable access to the underlying preference model.
    pub fn model(&self) -> &PreferenceModel {
        &self.model
    }

    /// Mutable access (used by the evaluation harness for state snapshots).
    pub fn model_mut(&mut self) -> &mut PreferenceModel {
        &mut self.model
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> MamlConfig {
        self.config
    }

    /// Builds an independent learner with identical parameters and
    /// hyper-parameters. The construction seed is irrelevant — `restore`
    /// overwrites every trainable parameter — so the fork scores
    /// bit-identically to `self` (the serve artifact reload relies on the
    /// same property).
    pub fn fork(&mut self) -> MetaLearner {
        let params = snapshot(&mut self.model);
        let mut fork = MetaLearner::new(self.model.config(), self.config, &mut SeededRng::new(0));
        restore(&mut fork.model, &params);
        fork
    }

    /// Meta-trains on a task set (originals plus augmented tasks, Eqs. 9-10).
    ///
    /// `user_content` and `item_content` are the target domain's content
    /// matrices; tasks index into them.
    ///
    /// Returns one report per epoch.
    pub fn meta_train(
        &mut self,
        tasks: &[Task],
        user_content: &Matrix,
        item_content: &Matrix,
    ) -> Vec<MetaEpochReport> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let _train_span = metadpa_obs::span!("maml.meta_train");
        metadpa_obs::event!(
            "maml.start",
            "tasks" => tasks.len(),
            "epochs" => self.config.epochs,
            "inner_steps" => self.config.inner_steps,
            "meta_batch" => self.config.meta_batch,
        );
        let mut rng = SeededRng::new(self.config.seed);
        let mut outer = Adam::new(self.config.outer_lr);
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        let mut reports = Vec::with_capacity(self.config.epochs);
        // θ snapshot buffer, reused across meta-batches (the per-batch
        // snapshot itself is the rewind contract and stays).
        let mut theta: Vec<Matrix> = Vec::new();
        // Inner-loop buffers for the serial path, and a pool of
        // (scratch model, buffers) pairs for the parallel path. Workers
        // check a pair out per chunk and return it, so models are built
        // once per pool lifetime, not once per meta-batch; `restore`
        // overwrites every parameter, so reuse is exact.
        let mut serial_scratch = TaskScratch::default();
        let worker_scratch: Mutex<Vec<(PreferenceModel, TaskScratch)>> = Mutex::new(Vec::new());

        for epoch in 0..self.config.epochs {
            let _epoch_span = metadpa_obs::span!("maml.epoch");
            rng.shuffle(&mut order);
            let mut query_total = 0.0f64;
            let mut support_total = 0.0f64;
            let mut n_tasks = 0usize;

            for chunk in order.chunks(self.config.meta_batch) {
                snapshot_into(&mut self.model, &mut theta);
                let usable: Vec<usize> = chunk
                    .iter()
                    .copied()
                    .filter(|&t| !tasks[t].support.is_empty() && !tasks[t].query.is_empty())
                    .collect();

                // Per-task FOMAML gradients. The tasks of one meta-batch
                // are independent (each starts from θ), so they fan out
                // across the pool; each worker adapts a private scratch
                // model rebuilt from θ. Results come back in task order
                // and the meta-gradient is folded below in that order, so
                // the outer update is bit-identical at any thread count.
                let results: Vec<(Vec<Matrix>, f32, f32)> = {
                    let _inner_span = metadpa_obs::span!("maml.inner_loop");
                    let pool = Pool::current();
                    if pool.threads() > 1 && usable.len() > 1 {
                        let config = self.config;
                        let pref_config = self.model.config();
                        let theta = &theta;
                        let worker_scratch = &worker_scratch;
                        pool.map_chunks(usable.len(), |range| {
                            let mut entry = worker_scratch
                                .lock()
                                .expect("worker scratch pool poisoned")
                                .pop()
                                .unwrap_or_else(|| {
                                    (
                                        PreferenceModel::new(pref_config, &mut SeededRng::new(0)),
                                        TaskScratch::default(),
                                    )
                                });
                            let (scratch_model, task_scratch) = &mut entry;
                            let out = range
                                .map(|j| {
                                    let task = &tasks[usable[j]];
                                    fomaml_task_grads(
                                        scratch_model,
                                        &config,
                                        theta,
                                        user_content.row(task.user),
                                        item_content,
                                        task,
                                        task_scratch,
                                    )
                                })
                                .collect::<Vec<_>>();
                            worker_scratch
                                .lock()
                                .expect("worker scratch pool poisoned")
                                .push(entry);
                            out
                        })
                        .into_iter()
                        .flat_map(|(_, v)| v)
                        .collect()
                    } else {
                        usable
                            .iter()
                            .map(|&t_idx| {
                                let task = &tasks[t_idx];
                                fomaml_task_grads(
                                    &mut self.model,
                                    &self.config,
                                    &theta,
                                    user_content.row(task.user),
                                    item_content,
                                    task,
                                    &mut serial_scratch,
                                )
                            })
                            .collect()
                    }
                };

                // Deterministic fold: task order, on this thread.
                let used = results.len();
                let mut meta_grads: Option<Vec<Matrix>> = None;
                for (grads, query_loss, support_loss) in results {
                    match &mut meta_grads {
                        None => meta_grads = Some(grads),
                        Some(acc) => {
                            for (a, g) in acc.iter_mut().zip(grads.iter()) {
                                a.add_inplace(g);
                            }
                        }
                    }
                    query_total += query_loss as f64;
                    support_total += support_loss as f64;
                    n_tasks += 1;
                }

                // Outer update from θ with the averaged meta-gradient.
                let _outer_span = metadpa_obs::span!("maml.outer_update");
                restore(&mut self.model, &theta);
                if let Some(mut grads) = meta_grads {
                    let inv = 1.0 / used as f32;
                    for g in &mut grads {
                        g.map_inplace(|v| v * inv);
                    }
                    zero_grad(&mut self.model);
                    accumulate_grads(&mut self.model, &grads);
                    outer.step(&mut self.model);
                }
            }

            let report = MetaEpochReport {
                post_adapt_query_loss: (query_total / n_tasks.max(1) as f64) as f32,
                pre_adapt_support_loss: (support_total / n_tasks.max(1) as f64) as f32,
            };
            metadpa_obs::event!(
                "maml.epoch",
                "epoch" => epoch,
                "post_adapt_query_loss" => report.post_adapt_query_loss,
                "pre_adapt_support_loss" => report.pre_adapt_support_loss,
                "tasks_used" => n_tasks,
            );
            reports.push(report);
        }
        reports
    }

    /// Meta-testing adaptation: fine-tunes the current parameters on the
    /// support sets of the given tasks (the paper fine-tunes the trained
    /// model with "a few ratings" before cold-start evaluation).
    ///
    /// Unlike meta-training this mutates the model in place; the harness
    /// snapshots/restores around it.
    pub fn fine_tune(&mut self, tasks: &[Task], user_content: &Matrix, item_content: &Matrix) {
        let _span = metadpa_obs::span!("maml.fine_tune");
        let sgd = Sgd::new(self.config.inner_lr);
        let mut scratch = TaskScratch::default();
        for _ in 0..self.config.finetune_steps {
            for task in tasks {
                if task.support.is_empty() {
                    continue;
                }
                let uc = user_content.row(task.user);
                zero_grad(&mut self.model);
                let _ = run_set_on(
                    &mut self.model,
                    uc,
                    item_content,
                    &task.support,
                    true,
                    &mut scratch,
                );
                self.model.visit_params(&mut |p| sgd.step_param(p));
            }
        }
    }

    /// Scores candidate items for a user (higher is better).
    pub fn score(
        &mut self,
        user_content: &[f32],
        item_content: &Matrix,
        items: &[usize],
    ) -> Vec<f32> {
        self.model.score_items(user_content, item_content, items)
    }

    /// [`MetaLearner::score`] into a reused caller vector — bit-identical,
    /// zero allocations in steady state (the serve catalogue-ranking path).
    pub fn score_into(
        &mut self,
        user_content: &[f32],
        item_content: &Matrix,
        items: &[usize],
        out: &mut Vec<f32>,
    ) {
        self.model.score_items_into(user_content, item_content, items, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> (PreferenceConfig, MamlConfig) {
        (
            PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] },
            MamlConfig {
                inner_lr: 0.1,
                outer_lr: 5e-3,
                inner_steps: 1,
                meta_batch: 4,
                epochs: 8,
                finetune_steps: 3,
                seed: 1,
            },
        )
    }

    /// A toy task universe: user u likes item i iff their content vectors
    /// agree in sign on the first coordinate.
    fn toy_tasks(
        rng: &mut SeededRng,
        n_users: usize,
        n_items: usize,
    ) -> (Vec<Task>, Matrix, Matrix) {
        let user_content = Matrix::from_fn(n_users, 6, |u, c| {
            let sign = if u % 2 == 0 { 1.0 } else { -1.0 };
            sign * (0.3 + 0.1 * c as f32) + 0.01 * rng.normal()
        });
        let item_content = Matrix::from_fn(n_items, 6, |i, c| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            sign * (0.3 + 0.05 * c as f32) + 0.01 * rng.normal()
        });
        let mut tasks = Vec::new();
        for u in 0..n_users {
            let mut pairs: Vec<(usize, f32)> =
                (0..n_items).map(|i| (i, if (u % 2) == (i % 2) { 1.0 } else { 0.0 })).collect();
            rng.shuffle(&mut pairs);
            let (s, q) = pairs.split_at(n_items / 2);
            tasks.push(Task { user: u, support: s.to_vec(), query: q.to_vec() });
        }
        (tasks, user_content, item_content)
    }

    #[test]
    fn meta_training_reduces_post_adaptation_query_loss() {
        let mut rng = SeededRng::new(2);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let (tasks, uc, ic) = toy_tasks(&mut rng, 12, 10);
        let reports = learner.meta_train(&tasks, &uc, &ic);
        assert_eq!(reports.len(), 8);
        let first = reports.first().unwrap().post_adapt_query_loss;
        let last = reports.last().unwrap().post_adapt_query_loss;
        assert!(last < first, "meta objective should improve: {first} -> {last}");
    }

    #[test]
    fn fine_tuning_adapts_to_an_unseen_user() {
        // Train on even-user tasks; fine-tune on an odd user's support; the
        // score ordering must flip to match the odd user's preference. The
        // seed is pinned to the in-tree xoshiro256++ streams.
        let mut rng = SeededRng::new(4);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let (tasks, uc, ic) = toy_tasks(&mut rng, 12, 10);
        let train: Vec<Task> = tasks.iter().filter(|t| t.user % 2 == 0).cloned().collect();
        let _ = learner.meta_train(&train, &uc, &ic);

        let cold = tasks.iter().find(|t| t.user % 2 == 1).unwrap().clone();
        learner.fine_tune(std::slice::from_ref(&cold), &uc, &ic);
        let scores = learner.score(uc.row(cold.user), &ic, &[0, 1]);
        // Odd users like odd items: item 1 must outscore item 0.
        assert!(
            scores[1] > scores[0],
            "fine-tuned model should prefer odd items for odd users: {scores:?}"
        );
    }

    #[test]
    fn meta_train_on_empty_tasks_is_a_noop() {
        let mut rng = SeededRng::new(4);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let uc = Matrix::zeros(1, 6);
        let ic = Matrix::zeros(1, 6);
        assert!(learner.meta_train(&[], &uc, &ic).is_empty());
    }

    #[test]
    fn tasks_with_empty_sets_are_skipped() {
        let mut rng = SeededRng::new(5);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let uc = Matrix::zeros(2, 6);
        let ic = Matrix::zeros(3, 6);
        let tasks = vec![
            Task { user: 0, support: vec![], query: vec![(0, 1.0)] },
            Task { user: 1, support: vec![(1, 1.0)], query: vec![] },
        ];
        let reports = learner.meta_train(&tasks, &uc, &ic);
        // Every task was skipped -> losses are 0 (no contribution).
        assert!(reports.iter().all(|r| r.post_adapt_query_loss == 0.0));
    }

    #[test]
    fn meta_training_is_deterministic() {
        let run = || {
            let mut rng = SeededRng::new(6);
            let (pc, mc) = toy_config();
            let mut learner = MetaLearner::new(pc, mc, &mut rng);
            let (tasks, uc, ic) = toy_tasks(&mut rng, 8, 8);
            let _ = learner.meta_train(&tasks, &uc, &ic);
            learner.score(uc.row(0), &ic, &[0, 1, 2, 3])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn meta_training_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            metadpa_tensor::pool::with_threads(threads, || {
                let mut rng = SeededRng::new(6);
                let (pc, mc) = toy_config();
                let mut learner = MetaLearner::new(pc, mc, &mut rng);
                let (tasks, uc, ic) = toy_tasks(&mut rng, 9, 8);
                let _ = learner.meta_train(&tasks, &uc, &ic);
                snapshot(learner.model_mut())
            })
        };
        let serial = run(1);
        for threads in [2, 7] {
            let parallel = run(threads);
            assert_eq!(serial.len(), parallel.len());
            for (layer, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
                for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "θ layer {layer} element {i} drifts at threads={threads}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn fork_scores_bit_identically() {
        let mut rng = SeededRng::new(9);
        let (pc, mc) = toy_config();
        let mut learner = MetaLearner::new(pc, mc, &mut rng);
        let (tasks, uc, ic) = toy_tasks(&mut rng, 8, 8);
        let _ = learner.meta_train(&tasks, &uc, &ic);
        let mut fork = learner.fork();
        let items: Vec<usize> = (0..8).collect();
        assert_eq!(learner.score(uc.row(3), &ic, &items), fork.score(uc.row(3), &ic, &items));
    }
}

//! The shared evaluation contract and leave-one-out harness.
//!
//! Every system in the comparison — MetaDPA and all seven baselines —
//! implements [`Recommender`], so Table III, Figs. 3-5 and the
//! significance test all run through the same code path:
//!
//! 1. `fit` once on the scenario's meta-training tasks (built from `R_w`),
//! 2. per cold-start scenario, `fine_tune` on the testing tasks' support
//!    sets (the harness snapshots and restores model state around this),
//! 3. `score` each evaluation instance's candidates and aggregate
//!    HR/MRR/NDCG/AUC.

use std::sync::Mutex;

use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_metrics::MetricSummary;
use metadpa_tensor::{Matrix, Pool};

/// A recommendation system under the paper's protocol.
pub trait Recommender {
    /// Display name used in result tables.
    fn name(&self) -> String;

    /// Trains on the scenario's meta-training tasks (the warm ratings
    /// `R_w`). Cross-domain systems may also use the source domains in
    /// `world`.
    fn fit(&mut self, world: &World, scenario: &Scenario);

    /// Adapts to cold-start users/items using the testing tasks' support
    /// sets. Called at most once between `snapshot_state`/`restore_state`.
    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain);

    /// Scores candidate items for a user; higher means more preferred.
    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32>;

    /// Copies out all trainable state (used to rewind fine-tuning).
    fn snapshot_state(&mut self) -> Vec<Matrix>;

    /// Restores state produced by [`Recommender::snapshot_state`].
    fn restore_state(&mut self, state: &[Matrix]);

    /// Forks an independent scorer with the *current* parameters, used by
    /// the evaluation harness to fan per-user scoring out across the pool.
    /// Implementations must guarantee the fork scores bit-identically to
    /// `self`; returning `None` (the default) keeps evaluation serial, so
    /// stateful or cheap recommenders need not implement it.
    fn fork_scorer(&mut self) -> Option<Box<dyn Recommender + Send>> {
        None
    }
}

/// Evaluates a fitted recommender on one scenario at several cutoffs,
/// returning one [`MetricSummary`] per requested `k` (scores are computed
/// once per instance and reused across cutoffs — this is how the NDCG@k
/// curves of Figs. 3-4 are produced).
///
/// The recommender's state is snapshotted before fine-tuning and restored
/// afterwards, so one `fit` serves all four scenarios.
///
/// # Panics
/// Panics if `ks` is empty.
pub fn evaluate_scenario_at_ks(
    rec: &mut dyn Recommender,
    world: &World,
    scenario: &Scenario,
    ks: &[usize],
) -> Vec<MetricSummary> {
    assert!(!ks.is_empty(), "evaluate_scenario_at_ks: need at least one cutoff");
    let state = rec.snapshot_state();
    if !scenario.finetune_tasks.is_empty() {
        rec.fine_tune(&scenario.finetune_tasks, &world.target);
    }
    // Per-instance score vectors, computed serially or fanned out across
    // the pool, then aggregated below in instance order either way — the
    // summaries are bit-identical at any thread count.
    let pool = Pool::current();
    let per_instance: Vec<Vec<f32>> = if pool.threads() > 1 && scenario.eval.len() > 1 {
        parallel_instance_scores(rec, world, scenario, &pool)
            .unwrap_or_else(|| serial_instance_scores(rec, world, scenario))
    } else {
        serial_instance_scores(rec, world, scenario)
    };

    let mut summaries = vec![MetricSummary::default(); ks.len()];
    for scores in &per_instance {
        let positive = scores[0];
        let negatives = &scores[1..];
        for (summary, &k) in summaries.iter_mut().zip(ks.iter()) {
            summary.add_instance(positive, negatives, k);
        }
    }
    rec.restore_state(&state);
    summaries
}

/// Scores every eval instance on the calling thread, in order.
fn serial_instance_scores(
    rec: &mut dyn Recommender,
    world: &World,
    scenario: &Scenario,
) -> Vec<Vec<f32>> {
    scenario
        .eval
        .iter()
        .map(|instance| {
            let candidates = instance.candidates();
            let scores = rec.score(&world.target, instance.user, &candidates);
            debug_assert_eq!(scores.len(), candidates.len());
            scores
        })
        .collect()
}

/// Fans instance scoring out across the pool: one [`Recommender::fork_scorer`]
/// per chunk of instances, created up front on the calling thread, each
/// scoring its contiguous chunk. Returns `None` when the recommender does
/// not support forking (the caller falls back to the serial loop).
fn parallel_instance_scores(
    rec: &mut dyn Recommender,
    world: &World,
    scenario: &Scenario,
    pool: &Pool,
) -> Option<Vec<Vec<f32>>> {
    let chunks = pool.partition(scenario.eval.len());
    let mut forks: Vec<Mutex<Box<dyn Recommender + Send>>> = Vec::with_capacity(chunks.len());
    for _ in 0..chunks.len() {
        forks.push(Mutex::new(rec.fork_scorer()?));
    }
    let per_chunk = pool.map_tasks(chunks.len(), |c| {
        let mut fork = forks[c].lock().expect("eval fork scorer poisoned");
        chunks[c]
            .clone()
            .map(|e| {
                let instance = &scenario.eval[e];
                let candidates = instance.candidates();
                let scores = fork.score(&world.target, instance.user, &candidates);
                debug_assert_eq!(scores.len(), candidates.len());
                scores
            })
            .collect::<Vec<_>>()
    });
    Some(per_chunk.into_iter().flatten().collect())
}

/// Evaluates at a single cutoff (the Table III setting is `k = 10`).
pub fn evaluate_scenario(
    rec: &mut dyn Recommender,
    world: &World,
    scenario: &Scenario,
    k: usize,
) -> MetricSummary {
    evaluate_scenario_at_ks(rec, world, scenario, &[k]).pop().expect("one summary per cutoff")
}

/// Produces a user's top-`k` recommendation list over the whole catalogue,
/// best first, excluding the user's already-rated items when
/// `exclude_rated` is set — the serving-side API a deployment would call.
pub fn recommend_top_k(
    rec: &mut dyn Recommender,
    domain: &Domain,
    user: usize,
    k: usize,
    exclude_rated: bool,
) -> Vec<(usize, f32)> {
    let candidates: Vec<usize> = if exclude_rated {
        (0..domain.n_items()).filter(|&i| !domain.has_interaction(user, i)).collect()
    } else {
        (0..domain.n_items()).collect()
    };
    if candidates.is_empty() {
        return Vec::new();
    }
    let scores = rec.score(domain, user, &candidates);
    metadpa_metrics::ranking::top_k_indices(&scores, k)
        .into_iter()
        .map(|idx| (candidates[idx], scores[idx]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    /// An oracle that scores an item 1 if the user actually interacted
    /// with it — ranks every eval positive first.
    struct Oracle;

    impl Recommender for Oracle {
        fn name(&self) -> String {
            "Oracle".into()
        }
        fn fit(&mut self, _world: &World, _scenario: &Scenario) {}
        fn fine_tune(&mut self, _tasks: &[Task], _domain: &Domain) {}
        fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
            items.iter().map(|&i| if domain.has_interaction(user, i) { 1.0 } else { 0.0 }).collect()
        }
        fn snapshot_state(&mut self) -> Vec<Matrix> {
            Vec::new()
        }
        fn restore_state(&mut self, _state: &[Matrix]) {}
    }

    /// A constant scorer — the pessimistic tie-breaking in the metrics
    /// must drive all its cutoff metrics to zero-ish and AUC to 0.5.
    struct Constant;

    impl Recommender for Constant {
        fn name(&self) -> String {
            "Constant".into()
        }
        fn fit(&mut self, _world: &World, _scenario: &Scenario) {}
        fn fine_tune(&mut self, _tasks: &[Task], _domain: &Domain) {}
        fn score(&mut self, _domain: &Domain, _user: usize, items: &[usize]) -> Vec<f32> {
            vec![0.5; items.len()]
        }
        fn snapshot_state(&mut self) -> Vec<Matrix> {
            Vec::new()
        }
        fn restore_state(&mut self, _state: &[Matrix]) {}
    }

    #[test]
    fn oracle_achieves_perfect_metrics() {
        let w = generate_world(&tiny_world(31));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let scenario = sp.scenario(ScenarioKind::Warm);
        let mut oracle = Oracle;
        let s = evaluate_scenario(&mut oracle, &w, &scenario, 10);
        assert_eq!(s.hr, 1.0);
        assert_eq!(s.mrr, 1.0);
        assert_eq!(s.ndcg, 1.0);
        assert_eq!(s.auc, 1.0);
        assert_eq!(s.count, scenario.eval.len());
    }

    #[test]
    fn constant_scorer_gets_chance_auc_and_zero_hits() {
        let w = generate_world(&tiny_world(32));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let scenario = sp.scenario(ScenarioKind::ColdUser);
        let mut rec = Constant;
        let s = evaluate_scenario(&mut rec, &w, &scenario, 10);
        assert_eq!(s.hr, 0.0, "ties rank the positive last");
        assert!((s.auc - 0.5).abs() < 1e-6);
    }

    #[test]
    fn multi_cutoff_evaluation_is_monotone_in_k() {
        let w = generate_world(&tiny_world(33));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let scenario = sp.scenario(ScenarioKind::Warm);
        let mut oracle = Oracle;
        let ks: Vec<usize> = (1..=10).collect();
        let summaries = evaluate_scenario_at_ks(&mut oracle, &w, &scenario, &ks);
        assert_eq!(summaries.len(), 10);
        for w in summaries.windows(2) {
            assert!(w[1].ndcg >= w[0].ndcg);
            assert!(w[1].hr >= w[0].hr);
        }
    }

    #[test]
    fn recommend_top_k_respects_exclusion_and_ordering() {
        let w = generate_world(&tiny_world(35));
        let mut oracle = Oracle;
        let user = 0;
        // Without exclusion the oracle surfaces the user's own rated items.
        let with_rated = recommend_top_k(&mut oracle, &w.target, user, 5, false);
        assert_eq!(with_rated.len(), 5);
        assert!(with_rated
            .iter()
            .take(w.target.interactions[user].len().min(5))
            .all(|&(i, s)| s == 1.0 && w.target.has_interaction(user, i)));
        // Scores are non-increasing.
        for pair in with_rated.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        // With exclusion none of the rated items appear.
        let without = recommend_top_k(&mut oracle, &w.target, user, 5, true);
        assert!(without.iter().all(|&(i, _)| !w.target.has_interaction(user, i)));
    }

    #[test]
    #[should_panic(expected = "at least one cutoff")]
    fn rejects_empty_cutoffs() {
        let w = generate_world(&tiny_world(34));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let scenario = sp.scenario(ScenarioKind::Warm);
        let _ = evaluate_scenario_at_ks(&mut Oracle, &w, &scenario, &[]);
    }
}

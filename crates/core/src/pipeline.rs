//! The end-to-end MetaDPA pipeline (paper Fig. 2) and its ablations.
//!
//! `fit` runs the three blocks in order:
//!
//! 1. **Block 1 — multi-source domain adaptation**: build shared-user pairs
//!    and train one Dual-CVAE per source under Eq. 8.
//! 2. **Block 2 — diverse preference augmentation**: run the k learned
//!    content-encoder/decoder paths over all target users' content to
//!    generate k rating matrices, and relabel the original tasks with them
//!    (Eq. 10).
//! 3. **Block 3 — preference meta-learning**: MAML-train the preference
//!    model on original + augmented tasks.
//!
//! Wall-clock of each block is recorded in [`BlockTimings`] — the quantity
//! the scalability experiment (Fig. 6) reports.
//!
//! [`Variant`] reproduces the ablations of §V-E: `MeOnly` keeps only the
//! ME constraint, `MdiOnly` keeps only MDI, and `Plain` disables both
//! (a Dual-CVAE-only augmentation baseline beyond the paper's two).

use std::time::Duration;

use metadpa_data::adaptation::{build_adaptation_pairs, AdaptationConfig};
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::module::{restore, snapshot};
use metadpa_tensor::{Matrix, SeededRng};

use crate::adaptation::{AdapterTrainConfig, MultiSourceAdapter};
use crate::augmentation::{build_augmented_tasks, diversity_report, DiversityReport};
use crate::dual_cvae::DualCvaeConfig;
use crate::eval::Recommender;
use crate::maml::{MamlConfig, MetaLearner};
use crate::noise_aug::{build_noise_augmented_tasks, NoiseAugConfig};
use crate::preference::PreferenceConfig;

/// Which augmentation strategy feeds the meta-learner (extension knob; the
/// paper's method is [`AugmentationStrategy::DiversePreference`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AugmentationStrategy {
    /// The paper's Blocks 1+2: Dual-CVAE adaptation + content-decoded
    /// diverse ratings.
    DiversePreference,
    /// The label-noise meta-augmentation of Rajendran et al. (the prior
    /// work §I builds on): k copies with uniformly perturbed labels and
    /// no cross-domain machinery.
    LabelNoise(NoiseAugConfig),
    /// No augmentation: meta-train on the original tasks only
    /// (a MeLU-style control with MetaDPA's full-parameter inner loop).
    None,
}

/// Which constraints the adaptation phase trains with (§V-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Full MetaDPA: both MDI and ME.
    Full,
    /// MetaDPA-ME: only the Mutually-Exclusive constraint.
    MeOnly,
    /// MetaDPA-MDI: only the Multi-domain InfoMax constraint.
    MdiOnly,
    /// No constraints (Dual-CVAE augmentation alone; an extra ablation).
    Plain,
}

impl Variant {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Full => "MetaDPA",
            Variant::MeOnly => "MetaDPA-ME",
            Variant::MdiOnly => "MetaDPA-MDI",
            Variant::Plain => "MetaDPA-Plain",
        }
    }

    fn apply(&self, mut dual: DualCvaeConfig) -> DualCvaeConfig {
        match self {
            Variant::Full => {
                dual.enable_mdi = true;
                dual.enable_me = true;
            }
            Variant::MeOnly => {
                dual.enable_mdi = false;
                dual.enable_me = true;
            }
            Variant::MdiOnly => {
                dual.enable_mdi = true;
                dual.enable_me = false;
            }
            Variant::Plain => {
                dual.enable_mdi = false;
                dual.enable_me = false;
            }
        }
        dual
    }
}

/// Wall-clock cost of each pipeline block (Fig. 6's y-axis).
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockTimings {
    /// Block 1: multi-source Dual-CVAE training.
    pub adaptation: Duration,
    /// Block 2: generating the k diverse rating matrices.
    pub augmentation: Duration,
    /// Block 3: preference meta-learning.
    pub meta_learning: Duration,
}

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct MetaDpaConfig {
    /// Dual-CVAE architecture and constraint weights (β₁, β₂ live here).
    pub dual: DualCvaeConfig,
    /// Adaptation-phase training schedule.
    pub adapter_train: AdapterTrainConfig,
    /// Shared-user filtering and 80/20 split.
    pub adaptation: AdaptationConfig,
    /// Preference model architecture.
    pub preference: PreferenceConfig,
    /// MAML schedule.
    pub maml: MamlConfig,
    /// Constraint ablation.
    pub variant: Variant,
    /// Which augmentation feeds meta-training (extension knob; the paper
    /// is [`AugmentationStrategy::DiversePreference`]).
    pub augmentation: AugmentationStrategy,
    /// How many copies of each *original* task enter meta-training
    /// alongside the k augmented copies. The paper's Eq. 9-10 corresponds
    /// to 1 (one original + k augmented); larger values re-balance toward
    /// the true labels — an extension knob studied by the
    /// `exp_mix_ablation` experiment.
    pub original_replication: usize,
    /// Master seed for model initialization.
    pub seed: u64,
}

impl Default for MetaDpaConfig {
    fn default() -> Self {
        Self {
            dual: DualCvaeConfig::default(),
            adapter_train: AdapterTrainConfig::default(),
            adaptation: AdaptationConfig::default(),
            preference: PreferenceConfig::default(),
            maml: MamlConfig::default(),
            variant: Variant::Full,
            augmentation: AugmentationStrategy::DiversePreference,
            original_replication: 1,
            seed: 0xD9A,
        }
    }
}

impl MetaDpaConfig {
    /// A lightweight configuration for tests and examples: small networks,
    /// few epochs, same structure.
    pub fn fast() -> Self {
        let mut cfg = Self::default();
        cfg.dual.hidden_dim = 32;
        cfg.dual.latent_dim = 8;
        cfg.dual.critic_dim = 12;
        cfg.adapter_train.epochs = 12;
        cfg.preference.embed_dim = 16;
        cfg.preference.hidden = [24, 12];
        cfg.maml.epochs = 10;
        cfg
    }
}

/// The MetaDPA system: three blocks wired end to end.
pub struct MetaDpa {
    config: MetaDpaConfig,
    learner: Option<MetaLearner>,
    adapter: Option<MultiSourceAdapter>,
    diversity: DiversityReport,
    timings: BlockTimings,
    /// Run-ledger key minted at the start of the most recent `fit`
    /// (`None` before the first). Stamped into every record the run emits
    /// and into exported artifacts, so trace, checkpoint, BENCH documents
    /// and the serving `/health` endpoint all join on one key.
    run: Option<metadpa_obs::run::RunId>,
}

impl MetaDpa {
    /// Creates an unfitted pipeline.
    pub fn new(config: MetaDpaConfig) -> Self {
        Self {
            config,
            learner: None,
            adapter: None,
            diversity: DiversityReport::default(),
            timings: BlockTimings::default(),
            run: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MetaDpaConfig {
        &self.config
    }

    /// Diversity statistics of the most recent augmentation (zeroed before
    /// the first `fit`).
    pub fn diversity(&self) -> DiversityReport {
        self.diversity
    }

    /// Per-block wall-clock of the most recent `fit`.
    pub fn timings(&self) -> BlockTimings {
        self.timings
    }

    /// The trained multi-source adapter, if fitted.
    pub fn adapter(&self) -> Option<&MultiSourceAdapter> {
        self.adapter.as_ref()
    }

    /// The run-ledger key of the most recent `fit` (`""` before the
    /// first) — the same string stamped into trace records and exported
    /// artifacts.
    pub fn run_id(&self) -> String {
        self.run.as_ref().map(ToString::to_string).unwrap_or_default()
    }

    fn learner_mut(&mut self) -> &mut MetaLearner {
        self.learner.as_mut().expect("MetaDpa: call fit before using the model")
    }

    /// Exports the fitted model as a self-contained serving
    /// [`crate::artifact::Artifact`]: preference-model parameters, the
    /// target domain's content matrices, and provenance metadata (git
    /// revision, data fingerprint, diversity stats).
    ///
    /// # Panics
    /// Panics if called before [`Recommender::fit`].
    pub fn export_artifact(&mut self, world: &World) -> crate::artifact::Artifact {
        let model_name = self.name();
        let diversity = self.diversity;
        let run_id = self.run_id();
        let learner =
            self.learner.as_mut().expect("MetaDpa: call fit before exporting an artifact");
        let artifact = crate::artifact::artifact_from_learner(
            learner,
            &model_name,
            metadpa_obs::report::git_rev(),
            world.fingerprint_hex(),
            diversity,
            world.target.user_content.clone(),
            world.target.item_content.clone(),
            run_id,
        );
        metadpa_obs::event!(
            "artifact.export",
            "model" => artifact.meta.model_name.as_str(),
            "data_fingerprint" => artifact.meta.data_fingerprint.as_str(),
            "params" => artifact.params.len(),
        );
        artifact
    }
}

impl Recommender for MetaDpa {
    fn name(&self) -> String {
        match self.config.augmentation {
            AugmentationStrategy::DiversePreference => self.config.variant.label().to_string(),
            AugmentationStrategy::LabelNoise(_) => "Meta-NoiseAug".to_string(),
            AugmentationStrategy::None => "Meta-NoAug".to_string(),
        }
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let _fit_span = metadpa_obs::span!("pipeline.fit");
        // Mint the run-ledger key: seed + config fingerprint + a
        // process-monotonic sequence number — no wall clock, so run IDs
        // are reproducible across identical invocations. Installing it
        // makes `emit` stamp every record of this run; minting itself
        // never touches the training path, so results stay bit-identical
        // whether observability is on or off.
        let run = metadpa_obs::run::mint(
            self.config.seed,
            metadpa_obs::run::fingerprint(format!("{:?}", self.config).as_bytes()),
        );
        metadpa_obs::run::install(run.clone());
        metadpa_obs::event!(
            "pipeline.run",
            "seed" => self.config.seed,
            "model" => self.name().as_str(),
        );
        self.run = Some(run);
        let mut rng = SeededRng::new(self.config.seed);
        let content_dim = world.target.user_content.cols();

        // ---- Block 1: multi-source domain adaptation -------------------
        // (Only the paper's strategy runs the cross-domain machinery; the
        // extension strategies skip straight to meta-learning.)
        let run_dpa = matches!(self.config.augmentation, AugmentationStrategy::DiversePreference);
        let mut generated: Vec<Matrix> = Vec::new();
        let mut adaptation_time = Duration::default();
        let mut augmentation_time = Duration::default();
        if run_dpa {
            // The span measures the whole block (pair building included),
            // exactly like the Instant-based timing it replaces; `finish`
            // hands back the wall-clock that BlockTimings reports.
            let adapt_span = metadpa_obs::span!("pipeline.adaptation");
            let pairs = build_adaptation_pairs(world, &self.config.adaptation);
            let usable: Vec<_> = pairs.into_iter().filter(|p| p.n_shared() >= 4).collect();
            if !usable.is_empty() {
                let dual_cfg = self.config.variant.apply(self.config.dual);
                let mut adapter = MultiSourceAdapter::new(
                    &usable,
                    content_dim,
                    dual_cfg,
                    self.config.adapter_train,
                    &mut rng.fork(1),
                );
                let _reports = adapter.train(&usable);
                adaptation_time = adapt_span.finish();

                // ---- Block 2: diverse preference augmentation ----------
                let aug_span = metadpa_obs::span!("pipeline.augmentation");
                generated = adapter.generate_diverse_ratings(&world.target.user_content);
                augmentation_time = aug_span.finish();
                self.adapter = Some(adapter);
            }
        }
        self.diversity = diversity_report(&generated);
        metadpa_obs::event!(
            "pipeline.diversity",
            "k" => self.diversity.k,
            "mean_pairwise_distance" => self.diversity.mean_pairwise_distance,
            "mean_confidence" => self.diversity.mean_confidence,
        );

        // ---- Block 3: preference meta-learning -------------------------
        let meta_span = metadpa_obs::span!("pipeline.meta_learning");
        let mut pref_cfg = self.config.preference;
        pref_cfg.content_dim = content_dim;
        let mut learner = MetaLearner::new(pref_cfg, self.config.maml, &mut rng.fork(2));
        let mut tasks: Vec<Task> = Vec::with_capacity(
            scenario.train_tasks.len() * (self.config.original_replication + generated.len()),
        );
        for _ in 0..self.config.original_replication.max(1) {
            tasks.extend(scenario.train_tasks.iter().cloned());
        }
        match self.config.augmentation {
            AugmentationStrategy::DiversePreference => {
                tasks.extend(build_augmented_tasks(&scenario.train_tasks, &generated));
            }
            AugmentationStrategy::LabelNoise(noise_cfg) => {
                tasks.extend(build_noise_augmented_tasks(&scenario.train_tasks, &noise_cfg));
            }
            AugmentationStrategy::None => {}
        }
        let _ = learner.meta_train(&tasks, &world.target.user_content, &world.target.item_content);
        self.timings = BlockTimings {
            adaptation: adaptation_time,
            augmentation: augmentation_time,
            meta_learning: meta_span.finish(),
        };
        self.learner = Some(learner);
    }

    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain) {
        let learner = self.learner_mut();
        learner.fine_tune(tasks, &domain.user_content, &domain.item_content);
    }

    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let learner = self.learner_mut();
        let uc: Vec<f32> = domain.user_content.row(user).to_vec();
        learner.score(&uc, &domain.item_content, items)
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        snapshot(self.learner_mut().model_mut())
    }

    fn restore_state(&mut self, state: &[Matrix]) {
        restore(self.learner_mut().model_mut(), state);
    }

    fn fork_scorer(&mut self) -> Option<Box<dyn Recommender + Send>> {
        // Forks carry the meta-learner (all scoring state) but not the
        // adapter — scoring never touches it. Unfitted models can't fork,
        // which sends the harness down the serial path (where scoring
        // panics with the usual "call fit" message).
        let learner = self.learner.as_mut()?;
        Some(Box::new(MetaDpa {
            config: self.config.clone(),
            learner: Some(learner.fork()),
            adapter: None,
            diversity: self.diversity,
            timings: self.timings,
            run: self.run.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn full_pipeline_fits_and_evaluates_all_scenarios() {
        let w = generate_world(&tiny_world(41));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let mut model = MetaDpa::new(MetaDpaConfig::fast());
        model.fit(&w, &warm);

        // Augmentation happened and produced diversity.
        let div = model.diversity();
        assert_eq!(div.k, 2, "tiny world has two sources");
        assert!(div.mean_pairwise_distance >= 0.0);
        assert!(model.timings().meta_learning > Duration::ZERO);

        for kind in ScenarioKind::ALL {
            let scenario = sp.scenario(kind);
            let s = evaluate_scenario(&mut model, &w, &scenario, 10);
            assert!(s.count > 0, "{kind:?}");
            assert!(s.auc.is_finite());
            assert!((0.0..=1.0).contains(&s.hr));
        }
    }

    #[test]
    fn fine_tune_then_restore_leaves_scores_unchanged() {
        let w = generate_world(&tiny_world(42));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = MetaDpa::new(MetaDpaConfig::fast());
        model.fit(&w, &warm);

        let user = cu.eval[0].user;
        let items: Vec<usize> = (0..5).collect();
        let before = model.score(&w.target, user, &items);
        let state = model.snapshot_state();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        let during = model.score(&w.target, user, &items);
        model.restore_state(&state);
        let after = model.score(&w.target, user, &items);
        assert_ne!(before, during, "fine-tuning must change the model");
        assert_eq!(before, after, "restore must rewind exactly");
    }

    #[test]
    fn fit_and_evaluation_are_bit_identical_across_thread_counts() {
        // End-to-end determinism: the whole pipeline — CVAE adaptation,
        // augmentation, MAML (parallel inner loop), and the evaluation
        // fan-out — must produce bit-identical parameters and metrics at
        // any METADPA_THREADS setting.
        let run = |threads: usize| {
            metadpa_tensor::pool::with_threads(threads, || {
                let w = generate_world(&tiny_world(45));
                let sp = Splitter::new(&w.target, SplitConfig::default());
                let warm = sp.scenario(ScenarioKind::Warm);
                let mut model = MetaDpa::new(MetaDpaConfig::fast());
                model.fit(&w, &warm);
                let summary = evaluate_scenario(&mut model, &w, &warm, 10);
                (model.snapshot_state(), summary)
            })
        };
        let (theta_1, summary_1) = run(1);
        for threads in [2, 7] {
            let (theta_t, summary_t) = run(threads);
            assert_eq!(theta_1.len(), theta_t.len());
            for (layer, (a, b)) in theta_1.iter().zip(theta_t.iter()).enumerate() {
                assert_eq!(a, b, "parameters of layer {layer} drift at threads={threads}");
            }
            assert_eq!(summary_1.hr, summary_t.hr, "HR drifts at threads={threads}");
            assert_eq!(summary_1.mrr, summary_t.mrr, "MRR drifts at threads={threads}");
            assert_eq!(summary_1.ndcg, summary_t.ndcg, "NDCG drifts at threads={threads}");
            assert_eq!(summary_1.auc, summary_t.auc, "AUC drifts at threads={threads}");
        }
    }

    #[test]
    fn fork_scorer_matches_the_fitted_model() {
        let w = generate_world(&tiny_world(46));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let mut model = MetaDpa::new(MetaDpaConfig::fast());
        assert!(model.fork_scorer().is_none(), "unfitted models cannot fork");
        model.fit(&w, &warm);
        let mut fork = model.fork_scorer().expect("fitted model forks");
        let items: Vec<usize> = (0..w.target.n_items().min(6)).collect();
        assert_eq!(
            model.score(&w.target, 0, &items),
            fork.score(&w.target, 0, &items),
            "fork must score bit-identically"
        );
    }

    #[test]
    fn variants_toggle_constraints() {
        assert!(Variant::Full.apply(DualCvaeConfig::default()).enable_mdi);
        assert!(Variant::Full.apply(DualCvaeConfig::default()).enable_me);
        let me = Variant::MeOnly.apply(DualCvaeConfig::default());
        assert!(!me.enable_mdi && me.enable_me);
        let mdi = Variant::MdiOnly.apply(DualCvaeConfig::default());
        assert!(mdi.enable_mdi && !mdi.enable_me);
        let plain = Variant::Plain.apply(DualCvaeConfig::default());
        assert!(!plain.enable_mdi && !plain.enable_me);
    }

    #[test]
    fn alternative_augmentation_strategies_fit_and_evaluate() {
        let w = generate_world(&tiny_world(44));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        for (strategy, expect_adapter) in [
            (AugmentationStrategy::LabelNoise(crate::noise_aug::NoiseAugConfig::default()), false),
            (AugmentationStrategy::None, false),
        ] {
            let mut cfg = MetaDpaConfig::fast();
            cfg.augmentation = strategy;
            let mut model = MetaDpa::new(cfg);
            model.fit(&w, &warm);
            assert_eq!(model.adapter().is_some(), expect_adapter);
            assert_eq!(model.diversity().k, 0, "no DPA generations under {strategy:?}");
            let s = evaluate_scenario(&mut model, &w, &warm, 10);
            assert!(s.count > 0);
            assert!(s.auc.is_finite());
        }
    }

    #[test]
    fn strategy_names_distinguish_models() {
        let mut cfg = MetaDpaConfig::fast();
        assert_eq!(MetaDpa::new(cfg.clone()).name(), "MetaDPA");
        cfg.augmentation =
            AugmentationStrategy::LabelNoise(crate::noise_aug::NoiseAugConfig::default());
        assert_eq!(MetaDpa::new(cfg.clone()).name(), "Meta-NoiseAug");
        cfg.augmentation = AugmentationStrategy::None;
        assert_eq!(MetaDpa::new(cfg).name(), "Meta-NoAug");
    }

    #[test]
    #[should_panic(expected = "call fit before")]
    fn scoring_before_fit_panics() {
        let w = generate_world(&tiny_world(43));
        let mut model = MetaDpa::new(MetaDpaConfig::fast());
        let _ = model.score(&w.target, 0, &[0]);
    }
}

//! # metadpa-core
//!
//! The MetaDPA system (ICDE 2022): multi-source domain adaptation with
//! Dual-CVAEs, diverse preference augmentation, and preference
//! meta-learning for cold-start recommendation.
//!
//! The three blocks of the paper's Fig. 2 map to modules here:
//!
//! 1. **Multi-source domain adaptation** (§IV-A): [`cvae::Cvae`] is one
//!    conditional VAE; [`dual_cvae::DualCvae`] pairs a source and a target
//!    CVAE and trains them under the five-term objective of Eq. 8 —
//!    ELBO reconstruction (Eq. 2), the content-anchored KL (Eq. 3), the
//!    latent alignment MSE (Eq. 4), cross-domain reconstruction (Eq. 5),
//!    the MDI constraint (Eq. 6) and the ME constraint (Eq. 7), the last
//!    two realized with InfoNCE ([`critic::CriticInfoNce`]).
//!    [`adaptation::MultiSourceAdapter`] trains one Dual-CVAE per source.
//! 2. **Diverse preference augmentation** (§IV-B): [`augmentation`] runs
//!    each learned content-encoder/decoder pair (the red path of Fig. 1)
//!    over target-domain content to generate k diverse rating vectors per
//!    user, and measures their diversity.
//! 3. **Preference meta-learning** (§IV-C): [`preference::PreferenceModel`]
//!    is the embedding + multi-layer scorer of Eq. 11;
//!    [`maml::MetaLearner`] trains it with first-order MAML over original
//!    and augmented tasks and fine-tunes it for the cold-start settings.
//!
//! [`pipeline::MetaDpa`] wires the blocks into the end-to-end system, with
//! [`pipeline::Variant`] selecting the ablations of §V-E (MetaDPA-ME,
//! MetaDPA-MDI). [`eval`] defines the [`eval::Recommender`] trait shared
//! with the baselines crate and the leave-one-out evaluation harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptation;
pub mod artifact;
pub mod augmentation;
pub mod critic;
pub mod cvae;
pub mod dual_cvae;
pub mod eval;
pub mod maml;
pub mod noise_aug;
pub mod pipeline;
pub mod preference;

pub use adaptation::MultiSourceAdapter;
pub use artifact::{Artifact, ArtifactError, ArtifactMeta, ArtifactRecommender, ARTIFACT_SCHEMA};
pub use dual_cvae::{DualCvae, DualCvaeConfig, DualCvaeLosses};
pub use eval::{evaluate_scenario, Recommender};
pub use maml::{MamlConfig, MetaLearner, SentinelConfig, TrainAbort, TrainAnomaly};
pub use pipeline::{MetaDpa, MetaDpaConfig, Variant};
pub use preference::{PreferenceConfig, PreferenceModel};

//! One conditional VAE (half of a Dual-CVAE, paper Fig. 1).
//!
//! Three networks per domain:
//!
//! * **Rating encoder** `q_φ(z | r, x)`: a 2-layer net over the
//!   concatenation `[r ; x]` emitting `[μ ; log σ²]`.
//! * **Content encoder** `E^x` (`q_φx(z^x | x)`): a 2-layer net mapping the
//!   content embedding to the latent space. Its output anchors the KL term
//!   (Eq. 3) and aligns with sampled latents via the MSE term (Eq. 4), which
//!   is what lets the augmentation step decode ratings from content alone.
//! * **Decoder** `p_θ(r | z, x)`: a 2-layer net over `[z ; x]` producing
//!   per-item *logits*.
//!
//! On the output nonlinearity: the paper says the decoder output layer uses
//! softmax yet trains with binary cross-entropy. A softmax over hundreds of
//! items cannot reach the target value 1 for any single item, so (like the
//! HCVAE reference implementation the paper builds on) we use the sigmoid +
//! BCE-with-logits pairing; probabilities still land in `[0, 1]` as the
//! paper requires of the generated ratings.
//!
//! The struct exposes the forward pieces separately (encode /
//! reparameterize / decode / content-encode) because the Dual-CVAE training
//! step interleaves them with cross-domain paths; each `backward_*`
//! mirrors the most recent matching forward.

use metadpa_nn::activation::sigmoid;
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{Mode, Module};
use metadpa_nn::param::Param;
use metadpa_tensor::{Matrix, SeededRng};

/// Architecture hyper-parameters of one CVAE.
#[derive(Clone, Copy, Debug)]
pub struct CvaeConfig {
    /// Number of items in the domain (`r` dimensionality).
    pub n_items: usize,
    /// Content embedding dimensionality (`x` dimensionality).
    pub content_dim: usize,
    /// Hidden width of the 2-layer encoder/decoder stacks.
    pub hidden_dim: usize,
    /// Latent dimensionality `L`.
    pub latent_dim: usize,
}

/// The cached state of the most recent encode/reparameterize pass.
struct EncodeCache {
    logvar: Matrix,
    eps: Matrix,
}

/// Reused forward/backward scratch. Every buffer keeps its high-water
/// capacity, so a steady-state training step only allocates what the API
/// contracts return to the caller (`z`, `μ`, `logvar`, decode logits, `dz`)
/// plus the fresh noise draw.
#[derive(Default)]
struct CvaeScratch {
    enc_in: Matrix,
    enc_out: Matrix,
    dmu: Matrix,
    dlv: Matrix,
    up: Matrix,
    dx: Matrix,
    dec_in: Matrix,
    grad: Matrix,
    dinput: Matrix,
    dx_disc: Matrix,
}

/// One conditional VAE.
pub struct Cvae {
    config: CvaeConfig,
    encoder: Mlp,
    content_encoder: Mlp,
    decoder: Mlp,
    cache: Option<EncodeCache>,
    ws: CvaeScratch,
}

impl Cvae {
    /// Builds a CVAE with tanh hidden layers (following HCVAE).
    pub fn new(config: CvaeConfig, rng: &mut SeededRng) -> Self {
        assert!(config.latent_dim > 0 && config.hidden_dim > 0, "Cvae: zero-sized layers");
        let encoder = Mlp::new(
            &[config.n_items + config.content_dim, config.hidden_dim, 2 * config.latent_dim],
            Activation::Tanh,
            rng,
        );
        let content_encoder = Mlp::new(
            &[config.content_dim, config.hidden_dim, config.latent_dim],
            Activation::Tanh,
            rng,
        );
        let decoder = Mlp::new(
            &[config.latent_dim + config.content_dim, config.hidden_dim, config.n_items],
            Activation::Tanh,
            rng,
        );
        Self { config, encoder, content_encoder, decoder, cache: None, ws: CvaeScratch::default() }
    }

    /// Architecture parameters.
    pub fn config(&self) -> CvaeConfig {
        self.config
    }

    /// Encodes `(r, x)` into the posterior `(μ, log σ²)` and samples
    /// `z = μ + σ ⊙ ε` with fresh noise from `rng`. Caches everything the
    /// backward pass needs. Returns `(z, μ, logvar)`.
    pub fn encode_and_sample(
        &mut self,
        ratings: &Matrix,
        content: &Matrix,
        rng: &mut SeededRng,
        mode: Mode,
    ) -> (Matrix, Matrix, Matrix) {
        assert_eq!(ratings.rows(), content.rows(), "Cvae: batch size mismatch");
        let Self { config, encoder, cache, ws, .. } = self;
        ratings.hstack_into(content, &mut ws.enc_in);
        encoder.forward_into(&mut ws.enc_in, mode, &mut ws.enc_out);
        // Retained allocations: μ, logvar and z are all returned to the
        // caller, so they cannot live in the scratch buffers.
        let (mu, mut logvar) = ws.enc_out.hsplit(config.latent_dim);
        logvar.map_inplace(|v| v.clamp(-8.0, 8.0));
        let eps = if mode == Mode::Train {
            rng.normal_matrix(mu.rows(), mu.cols())
        } else {
            Matrix::zeros(mu.rows(), mu.cols())
        };
        // z = mu + exp(0.5 lv) * eps, fused but with the per-element
        // expression shape of the old sigma/hadamard/add chain.
        let mut z = logvar.zip_map(&eps, |v, e| (0.5 * v).exp() * e);
        z.zip_map_inplace(&mu, |t, m| m + t);
        match cache {
            Some(c) => {
                c.logvar.assign(&logvar);
                c.eps = eps;
            }
            None => *cache = Some(EncodeCache { logvar: logvar.clone(), eps }),
        }
        (z, mu, logvar)
    }

    /// Backpropagates through the sampler and encoder.
    ///
    /// `grad_z` is the gradient reaching the sampled latent; `grad_mu` and
    /// `grad_logvar` are *additional* direct gradients on the posterior
    /// parameters (from the KL term). Accumulates encoder parameter
    /// gradients; the gradient w.r.t. the inputs is discarded (ratings and
    /// content are data).
    ///
    /// # Panics
    /// Panics if called before [`Cvae::encode_and_sample`].
    pub fn backward_encoder(&mut self, grad_z: &Matrix, grad_mu: &Matrix, grad_logvar: &Matrix) {
        let Self { encoder, cache, ws, .. } = self;
        let cache = cache.as_ref().expect("Cvae::backward_encoder before encode");
        // z = mu + exp(0.5 lv) * eps
        // dz/dmu = 1; dz/dlv = 0.5 * exp(0.5 lv) * eps.
        // Each in-place step below keeps the old chain's per-element
        // expression shape: ((g * sigma) * eps) * 0.5 + grad_logvar.
        grad_z.zip_map_into(&cache.logvar, |g, v| g * (0.5 * v).exp(), &mut ws.dlv);
        ws.dlv.zip_map_inplace(&cache.eps, |t, e| t * e);
        ws.dlv.map_inplace(|t| t * 0.5);
        ws.dlv.zip_map_inplace(grad_logvar, |t, g| t + g);
        grad_z.zip_map_into(grad_mu, |a, b| a + b, &mut ws.dmu);
        ws.dmu.hstack_into(&ws.dlv, &mut ws.up);
        encoder.backward_into(&mut ws.up, &mut ws.dx);
    }

    /// Runs the content encoder `E^x`, returning the anchor `z^x`.
    pub fn content_encode(&mut self, content: &Matrix, mode: Mode) -> Matrix {
        self.content_encoder.forward(content, mode)
    }

    /// Backpropagates `grad` through the content encoder (parameter
    /// gradients accumulate; input gradient discarded).
    pub fn backward_content_encoder(&mut self, grad: &Matrix) {
        let _ = self.content_encoder.backward(grad);
    }

    /// Decodes `(z, x)` into per-item logits.
    pub fn decode(&mut self, z: &Matrix, content: &Matrix, mode: Mode) -> Matrix {
        assert_eq!(z.rows(), content.rows(), "Cvae::decode: batch size mismatch");
        assert_eq!(z.cols(), self.config.latent_dim, "Cvae::decode: latent dim mismatch");
        let Self { decoder, ws, .. } = self;
        z.hstack_into(content, &mut ws.dec_in);
        // Retained allocation: the logits are the return value.
        let mut logits = Matrix::default();
        decoder.forward_into(&mut ws.dec_in, mode, &mut logits);
        logits
    }

    /// Backpropagates through the *most recent* decode, returning the
    /// gradient w.r.t. the latent `z` (the content part is discarded).
    pub fn backward_decoder(&mut self, grad_logits: &Matrix) -> Matrix {
        let Self { config, decoder, ws, .. } = self;
        ws.grad.assign(grad_logits);
        decoder.backward_into(&mut ws.grad, &mut ws.dinput);
        // Retained allocation: `dz` is the return value.
        let mut dz = Matrix::default();
        ws.dinput.hsplit_into(config.latent_dim, &mut dz, &mut ws.dx_disc);
        dz
    }

    /// The augmentation path of Fig. 1 (red line): decode ratings *from
    /// content alone* by using the content-encoder output as the latent.
    /// Returns probabilities in `[0, 1]`.
    pub fn generate_from_content(&mut self, content: &Matrix) -> Matrix {
        let z = self.content_encode(content, Mode::Eval);
        let mut probs = self.decode(&z, content, Mode::Eval);
        probs.map_inplace(sigmoid);
        probs
    }
}

impl Module for Cvae {
    /// Full-pass forward used only for generic parameter plumbing
    /// (optimizers, snapshots): runs the deterministic autoencoding path
    /// `decode(μ(r, x), x)` on an `[r ; x]` input.
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let (r, x) = input.hsplit(self.config.n_items);
        let enc_out = self.encoder.forward(&r.hstack(&x), mode);
        let (mu, _) = enc_out.hsplit(self.config.latent_dim);
        self.decode(&mu, &x, mode)
    }

    fn backward(&mut self, _grad_output: &Matrix) -> Matrix {
        panic!(
            "Cvae::backward is intentionally not implemented: the CVAE trains through the \
             explicit backward_decoder/backward_encoder path driven by DualCvae::train_step; \
             Module::backward exists only so optimizers can walk the parameters"
        )
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(visitor);
        self.content_encoder.visit_params(visitor);
        self.decoder.visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_nn::loss::bce_with_logits;
    use metadpa_nn::module::zero_grad;
    use metadpa_nn::optim::{Adam, Optimizer};

    fn config() -> CvaeConfig {
        CvaeConfig { n_items: 20, content_dim: 8, hidden_dim: 16, latent_dim: 4 }
    }

    fn batch(rng: &mut SeededRng, n: usize) -> (Matrix, Matrix) {
        let ratings = Matrix::from_fn(n, 20, |_, _| if rng.bernoulli(0.2) { 1.0 } else { 0.0 });
        let content = rng.uniform_matrix(n, 8, 0.0, 1.0);
        (ratings, content)
    }

    #[test]
    fn shapes_flow_through_all_paths() {
        let mut rng = SeededRng::new(1);
        let mut cvae = Cvae::new(config(), &mut rng);
        let (r, x) = batch(&mut rng, 5);
        let (z, mu, lv) = cvae.encode_and_sample(&r, &x, &mut rng, Mode::Train);
        assert_eq!(z.shape(), (5, 4));
        assert_eq!(mu.shape(), (5, 4));
        assert_eq!(lv.shape(), (5, 4));
        let zx = cvae.content_encode(&x, Mode::Train);
        assert_eq!(zx.shape(), (5, 4));
        let logits = cvae.decode(&z, &x, Mode::Train);
        assert_eq!(logits.shape(), (5, 20));
        let gen = cvae.generate_from_content(&x);
        assert_eq!(gen.shape(), (5, 20));
        assert!(gen.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn eval_mode_sampling_is_deterministic() {
        let mut rng = SeededRng::new(2);
        let mut cvae = Cvae::new(config(), &mut rng);
        let (r, x) = batch(&mut rng, 3);
        let (z1, mu1, _) = cvae.encode_and_sample(&r, &x, &mut rng, Mode::Eval);
        let (z2, _, _) = cvae.encode_and_sample(&r, &x, &mut rng, Mode::Eval);
        // In eval mode eps = 0, so z == mu and repeated calls agree.
        assert_eq!(z1, mu1);
        assert_eq!(z1, z2);
    }

    #[test]
    fn reconstruction_training_reduces_loss() {
        // Train the plain autoencoding path on a fixed batch; BCE must drop
        // substantially, demonstrating that gradients flow end-to-end
        // through sampler, encoder, and decoder.
        let mut rng = SeededRng::new(3);
        let mut cvae = Cvae::new(config(), &mut rng);
        let (r, x) = batch(&mut rng, 12);
        let mut opt = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            zero_grad(&mut cvae);
            let (z, _, _) = cvae.encode_and_sample(&r, &x, &mut rng, Mode::Train);
            let logits = cvae.decode(&z, &x, Mode::Train);
            let (loss, grad) = bce_with_logits(&logits, &r);
            let dz = cvae.backward_decoder(&grad);
            let zero = Matrix::zeros(dz.rows(), dz.cols());
            cvae.backward_encoder(&dz, &zero, &zero);
            opt.step(&mut cvae);
            first.get_or_insert(loss);
            last = loss;
        }
        let first = first.unwrap();
        assert!(last < first * 0.6, "reconstruction loss should drop: {first} -> {last}");
    }

    #[test]
    fn sampler_gradient_matches_finite_difference_through_mu() {
        // Freeze eps by capturing it from the cache; perturb encoder output
        // indirectly via grad check on mu-path: compare analytic dz->dmu
        // identity using the public API. Here we validate that with
        // grad_z = g, grad_mu = 0, the encoder receives exactly g on the mu
        // half (dz/dmu = I): train a 1-step SGD on a linear probe.
        let mut rng = SeededRng::new(4);
        let mut cvae = Cvae::new(config(), &mut rng);
        let (r, x) = batch(&mut rng, 4);
        let _ = cvae.encode_and_sample(&r, &x, &mut rng, Mode::Eval); // eps = 0
                                                                      // With eps = 0: dlv_from_z = 0, so upstream = [g ; grad_logvar].
                                                                      // Passing grad_logvar = 0 must not produce NaNs and must accumulate
                                                                      // some encoder gradient.
        let g = Matrix::filled(4, 4, 1.0);
        let zero = Matrix::zeros(4, 4);
        zero_grad(&mut cvae);
        cvae.backward_encoder(&g, &zero, &zero);
        let mut total = 0.0f32;
        cvae.visit_params(&mut |p| total += p.grad.frobenius_norm());
        assert!(total > 0.0, "encoder must receive gradient");
        assert!(total.is_finite());
    }

    #[test]
    fn generate_from_content_is_deterministic() {
        let mut rng = SeededRng::new(5);
        let mut cvae = Cvae::new(config(), &mut rng);
        let (_, x) = batch(&mut rng, 3);
        let a = cvae.generate_from_content(&x);
        let b = cvae.generate_from_content(&x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "before encode")]
    fn backward_encoder_requires_forward() {
        let mut rng = SeededRng::new(6);
        let mut cvae = Cvae::new(config(), &mut rng);
        let z = Matrix::zeros(1, 4);
        cvae.backward_encoder(&z, &z, &z);
    }

    #[test]
    #[should_panic(expected = "driven by DualCvae::train_step")]
    fn module_backward_names_the_real_entry_point() {
        let mut rng = SeededRng::new(7);
        let mut cvae = Cvae::new(config(), &mut rng);
        let _ = cvae.backward(&Matrix::zeros(1, 20));
    }
}

//! InfoNCE with learned projection heads — the critic used by the ME
//! constraint (Eq. 7).
//!
//! The ME constraint maximizes mutual information between the outputs of
//! the two decoders `D_s` and `D_t` of one Dual-CVAE, pulling the target
//! decoder toward the source domain's reconstruction patterns so that the
//! k Dual-CVAEs generate k *different* (diverse) rating vectors from the
//! same target content. The two decoder outputs live in different spaces
//! (source vs. target catalogues), so the plain dot-product InfoNCE of
//! `metadpa-nn` does not apply directly. Following standard InfoMax
//! practice (Hjelm et al. 2019), we estimate MI with a *bilinear critic*
//! factored through two learned linear projection heads:
//! `score(a, b) = (a U) (b V)ᵀ / τ`, trained jointly with the model.

use metadpa_nn::dense::Dense;
use metadpa_nn::infonce::InfoNce;
use metadpa_nn::module::{Mode, Module};
use metadpa_nn::param::Param;
use metadpa_tensor::{Matrix, SeededRng};

/// Result of a critic InfoNCE evaluation.
pub struct CriticResult {
    /// InfoNCE loss (a lower bound on `-I(a, b)` up to constants):
    /// minimizing it maximizes the MI estimate.
    pub loss: f32,
    /// Gradient with respect to the first input batch.
    pub grad_a: Matrix,
    /// Gradient with respect to the second input batch.
    pub grad_b: Matrix,
}

/// InfoNCE estimator with two learned projection heads, for inputs of
/// different dimensionality.
pub struct CriticInfoNce {
    head_a: Dense,
    head_b: Dense,
    nce: InfoNce,
}

impl CriticInfoNce {
    /// Creates a critic projecting `dim_a`- and `dim_b`-dimensional inputs
    /// into a shared `proj_dim`-dimensional space.
    pub fn new(
        dim_a: usize,
        dim_b: usize,
        proj_dim: usize,
        temperature: f32,
        rng: &mut SeededRng,
    ) -> Self {
        Self {
            head_a: Dense::new(dim_a, proj_dim, rng),
            head_b: Dense::new(dim_b, proj_dim, rng),
            nce: InfoNce::new(temperature),
        }
    }

    /// Evaluates the critic on aligned batches, accumulating head parameter
    /// gradients scaled by `weight` and returning input gradients (also
    /// scaled by `weight`).
    ///
    /// # Panics
    /// Panics if row counts differ or the batch has fewer than 2 rows.
    pub fn forward_backward(&mut self, a: &Matrix, b: &Matrix, weight: f32) -> CriticResult {
        assert_eq!(a.rows(), b.rows(), "CriticInfoNce: batch size mismatch");
        let pa = self.head_a.forward(a, Mode::Train);
        let pb = self.head_b.forward(b, Mode::Train);
        let r = self.nce.forward(&pa, &pb);
        let grad_a = self.head_a.backward(&r.grad_a.scale(weight));
        let grad_b = self.head_b.backward(&r.grad_b.scale(weight));
        CriticResult { loss: r.loss, grad_a, grad_b }
    }

    /// Loss-only evaluation (no gradients, no cache mutation side effects
    /// that matter — used for monitoring).
    pub fn loss(&mut self, a: &Matrix, b: &Matrix) -> f32 {
        let pa = self.head_a.forward(a, Mode::Eval);
        let pb = self.head_b.forward(b, Mode::Eval);
        self.nce.forward(&pa, &pb).loss
    }
}

impl Module for CriticInfoNce {
    fn forward(&mut self, _input: &Matrix, _mode: Mode) -> Matrix {
        panic!(
            "CriticInfoNce::forward is intentionally not implemented: the critic consumes \
             paired batches — call CriticInfoNce::forward_backward (or loss for monitoring); \
             the Module impl exists only so optimizers can walk the parameters"
        )
    }

    fn backward(&mut self, _grad_output: &Matrix) -> Matrix {
        panic!(
            "CriticInfoNce::backward is intentionally not implemented: gradients flow inside \
             CriticInfoNce::forward_backward; the Module impl exists only so optimizers can \
             walk the parameters"
        )
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.head_a.visit_params(visitor);
        self.head_b.visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_nn::module::zero_grad;
    use metadpa_nn::optim::{Adam, Optimizer};

    #[test]
    fn shapes_and_gradients_flow() {
        let mut rng = SeededRng::new(1);
        let mut critic = CriticInfoNce::new(10, 6, 4, 0.5, &mut rng);
        let a = rng.normal_matrix(5, 10);
        let b = rng.normal_matrix(5, 6);
        let r = critic.forward_backward(&a, &b, 1.0);
        assert_eq!(r.grad_a.shape(), (5, 10));
        assert_eq!(r.grad_b.shape(), (5, 6));
        assert!(r.loss.is_finite());
        let mut total = 0.0;
        critic.visit_params(&mut |p| total += p.grad.frobenius_norm());
        assert!(total > 0.0, "heads must receive gradients");
    }

    #[test]
    fn weight_scales_gradients_linearly() {
        let mut rng = SeededRng::new(2);
        let mut critic = CriticInfoNce::new(8, 8, 4, 0.5, &mut rng);
        let a = rng.normal_matrix(4, 8);
        let b = rng.normal_matrix(4, 8);
        zero_grad(&mut critic);
        let r1 = critic.forward_backward(&a, &b, 1.0);
        zero_grad(&mut critic);
        let r2 = critic.forward_backward(&a, &b, 2.0);
        for (g1, g2) in r1.grad_a.as_slice().iter().zip(r2.grad_a.as_slice().iter()) {
            assert!((2.0 * g1 - g2).abs() < 1e-5 * (1.0 + g2.abs()));
        }
        assert!((r1.loss - r2.loss).abs() < 1e-6, "loss itself is unweighted");
    }

    #[test]
    fn descending_aligns_correlated_batches() {
        // Inputs: b is a (noisy) linear function of a. Jointly training the
        // heads and descending the input gradients on a learnable copy
        // should reduce the loss — the MI estimate improves.
        let mut rng = SeededRng::new(3);
        let mut critic = CriticInfoNce::new(6, 6, 4, 0.3, &mut rng);
        let a = rng.normal_matrix(8, 6);
        let b = &a.scale(0.9) + &rng.normal_matrix(8, 6).scale(0.1);
        let mut opt = Adam::new(0.02);
        let first = critic.loss(&a, &b);
        for _ in 0..80 {
            zero_grad(&mut critic);
            let _ = critic.forward_backward(&a, &b, 1.0);
            opt.step(&mut critic);
        }
        let last = critic.loss(&a, &b);
        assert!(last < first, "critic training should tighten the bound: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn rejects_mismatched_batches() {
        let mut rng = SeededRng::new(4);
        let mut critic = CriticInfoNce::new(4, 4, 2, 0.5, &mut rng);
        let a = rng.normal_matrix(3, 4);
        let b = rng.normal_matrix(4, 4);
        let _ = critic.forward_backward(&a, &b, 1.0);
    }

    #[test]
    #[should_panic(expected = "call CriticInfoNce::forward_backward")]
    fn module_forward_names_the_real_entry_point() {
        let mut rng = SeededRng::new(5);
        let mut critic = CriticInfoNce::new(4, 4, 2, 0.5, &mut rng);
        let _ = critic.forward(&Matrix::zeros(1, 4), Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "gradients flow inside CriticInfoNce::forward_backward")]
    fn module_backward_names_the_real_entry_point() {
        let mut rng = SeededRng::new(5);
        let mut critic = CriticInfoNce::new(4, 4, 2, 0.5, &mut rng);
        let _ = critic.backward(&Matrix::zeros(1, 4));
    }
}

//! Diverse preference augmentation (paper §IV-B).
//!
//! After the adaptation phase, each of the k learned content-encoder /
//! target-decoder pairs generates one rating vector per target user from
//! that user's content alone. This module turns those k generated matrices
//! into the augmented meta-learning tasks of Eq. 10 (same items and
//! content as the original task, generated continuous labels) and measures
//! how *diverse* the generations actually are — the quantity the ME
//! constraint exists to increase (§V-E's ablation hinges on it).

use metadpa_data::task::Task;
use metadpa_tensor::stats::mean_pairwise_row_distance;
use metadpa_tensor::Matrix;

/// Diversity statistics of k generated rating matrices.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiversityReport {
    /// Mean (over users) of the mean pairwise L2 distance between the k
    /// generated rating vectors for that user. Zero when k < 2 or all
    /// generations agree.
    pub mean_pairwise_distance: f32,
    /// Mean absolute deviation of generated ratings from the 0.5 midpoint —
    /// a degenerate generator that outputs 0.5 everywhere scores 0.
    pub mean_confidence: f32,
    /// Number of generated variants (k).
    pub k: usize,
}

/// Measures the diversity of k generated rating matrices (each
/// `n_users x n_items`).
///
/// # Panics
/// Panics if the matrices have inconsistent shapes.
pub fn diversity_report(generated: &[Matrix]) -> DiversityReport {
    let k = generated.len();
    if k == 0 {
        return DiversityReport::default();
    }
    let shape = generated[0].shape();
    for g in generated {
        assert_eq!(g.shape(), shape, "diversity_report: inconsistent generation shapes");
    }
    let (n_users, n_items) = shape;

    let mut confidence = 0.0f64;
    for g in generated {
        for &v in g.as_slice() {
            confidence += ((v - 0.5).abs()) as f64;
        }
    }
    let mean_confidence = (confidence / (k * n_users * n_items) as f64) as f32;

    if k < 2 {
        return DiversityReport { mean_pairwise_distance: 0.0, mean_confidence, k };
    }
    let mut total = 0.0f64;
    let mut stacked = Matrix::zeros(k, n_items);
    for u in 0..n_users {
        for (row, g) in generated.iter().enumerate() {
            stacked.row_mut(row).copy_from_slice(g.row(u));
        }
        total += mean_pairwise_row_distance(&stacked) as f64;
    }
    DiversityReport { mean_pairwise_distance: (total / n_users as f64) as f32, mean_confidence, k }
}

/// Builds the augmented task set of Eq. 10: for every original task
/// `T_u = (c_t, r_t)` and every generated matrix `r̂_tk`, emit
/// `T_uk = (c_t, r̂_tk)` — identical items, generated labels.
///
/// The returned vector contains only the augmented tasks; callers
/// concatenate with the originals for meta-training (Eq. 9 + Eq. 10).
pub fn build_augmented_tasks(original: &[Task], generated: &[Matrix]) -> Vec<Task> {
    let mut out = Vec::with_capacity(original.len() * generated.len());
    for g in generated {
        for task in original {
            out.push(task.with_labels_from(g.row(task.user)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_generation_reports_zero() {
        let r = diversity_report(&[]);
        assert_eq!(r.k, 0);
        assert_eq!(r.mean_pairwise_distance, 0.0);
    }

    #[test]
    fn identical_generations_have_zero_distance() {
        let g = Matrix::filled(4, 6, 0.7);
        let r = diversity_report(&[g.clone(), g.clone(), g]);
        assert_eq!(r.k, 3);
        assert_eq!(r.mean_pairwise_distance, 0.0);
        assert!((r.mean_confidence - 0.2).abs() < 1e-6);
    }

    #[test]
    fn different_generations_have_positive_distance() {
        let a = Matrix::filled(4, 6, 0.9);
        let b = Matrix::filled(4, 6, 0.1);
        let r = diversity_report(&[a, b]);
        // Each user: two rows distance sqrt(6 * 0.8^2) = 0.8*sqrt(6).
        let expect = 0.8 * 6.0f32.sqrt();
        assert!((r.mean_pairwise_distance - expect).abs() < 1e-4);
    }

    #[test]
    fn degenerate_half_generator_scores_zero_confidence() {
        let g = Matrix::filled(3, 5, 0.5);
        let r = diversity_report(&[g]);
        assert_eq!(r.mean_confidence, 0.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent generation shapes")]
    fn rejects_mismatched_shapes() {
        let _ = diversity_report(&[Matrix::zeros(2, 3), Matrix::zeros(2, 4)]);
    }

    #[test]
    fn augmented_tasks_multiply_and_relabel() {
        let original = vec![
            Task { user: 0, support: vec![(0, 1.0)], query: vec![(1, 0.0)] },
            Task { user: 1, support: vec![(2, 1.0)], query: vec![(0, 0.0)] },
        ];
        let g1 = Matrix::from_vec(2, 3, vec![0.9, 0.8, 0.7, 0.3, 0.2, 0.1]);
        let g2 = Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.7, 0.8, 0.9]);
        let aug = build_augmented_tasks(&original, &[g1, g2]);
        assert_eq!(aug.len(), 4);
        // First generation, first task: labels from g1 row 0.
        assert_eq!(aug[0].support, vec![(0, 0.9)]);
        assert_eq!(aug[0].query, vec![(1, 0.8)]);
        // Second generation, second task: labels from g2 row 1.
        assert_eq!(aug[3].support, vec![(2, 0.9)]);
        assert_eq!(aug[3].query, vec![(0, 0.7)]);
        // Items are untouched.
        assert_eq!(aug[0].user, 0);
        assert_eq!(aug[3].user, 1);
    }

    #[test]
    fn no_generations_yield_no_augmented_tasks() {
        let original = vec![Task { user: 0, support: vec![(0, 1.0)], query: vec![] }];
        assert!(build_augmented_tasks(&original, &[]).is_empty());
    }
}

//! The Dual-CVAE of Fig. 1: a source/target CVAE pair trained under the
//! five-term cross-domain objective of Eq. 8.
//!
//! `L = L_ELBO + L_MSE + L_Rec + β₁ L_MDI + β₂ L_ME`
//!
//! * `L_ELBO` (Eq. 2): BCE reconstruction of each domain's ratings plus the
//!   content-anchored KL of Eq. 3.
//! * `L_MSE` (Eq. 4): aligns the sampled latents to the content-encoder
//!   outputs so ratings can later be decoded from content alone.
//! * `L_Rec` (Eq. 5): cross-domain reconstruction — decode the source's
//!   ratings from the *target's* latent and vice versa, aligning the two
//!   latent spaces.
//! * `L_MDI` (Eq. 6): maximize `I(z_s, z_t)` via InfoNCE, preserving
//!   domain-shared *and* domain-specific latent structure.
//! * `L_ME` (Eq. 7): maximize `I(r̂_s, r̂_t)` between the two decoders'
//!   outputs via a projected-critic InfoNCE, pulling the target decoder
//!   toward the source's reconstruction patterns; across the k Dual-CVAEs
//!   (one per source) this is what makes the k generated ratings *diverse*.
//!
//! A training step interleaves forwards and backwards carefully because
//! each decoder is used twice (direct + cross reconstruction) and the
//! layer caches hold only the most recent forward: every decoder use is
//! backpropagated before the next use.

use metadpa_nn::infonce::InfoNce;
use metadpa_nn::kl::gaussian_kl_to_anchor;
use metadpa_nn::loss::{bce_with_logits, mse};
use metadpa_nn::module::{Mode, Module};
use metadpa_nn::param::Param;
use metadpa_tensor::{Matrix, SeededRng};

use crate::critic::CriticInfoNce;
use crate::cvae::{Cvae, CvaeConfig};

/// Hyper-parameters of one Dual-CVAE.
#[derive(Clone, Copy, Debug)]
pub struct DualCvaeConfig {
    /// Hidden width of all encoder/decoder stacks.
    pub hidden_dim: usize,
    /// Latent dimensionality (shared by both domains so latents can cross).
    pub latent_dim: usize,
    /// Weight β₁ of the MDI constraint (paper optimum: 0.1).
    pub beta1: f32,
    /// Weight β₂ of the ME constraint (paper optimum: 1.0).
    pub beta2: f32,
    /// InfoNCE temperature for both constraints.
    pub temperature: f32,
    /// Projection dimensionality of the ME critic heads.
    pub critic_dim: usize,
    /// Enables the MDI term (disabled in the MetaDPA-ME ablation).
    pub enable_mdi: bool,
    /// Enables the ME term (disabled in the MetaDPA-MDI ablation).
    pub enable_me: bool,
}

impl Default for DualCvaeConfig {
    /// The paper's searched optimum: β₁ = 0.1, β₂ = 1 (both datasets).
    fn default() -> Self {
        Self {
            hidden_dim: 96,
            latent_dim: 24,
            beta1: 0.1,
            beta2: 1.0,
            temperature: 0.2,
            critic_dim: 32,
            enable_mdi: true,
            enable_me: true,
        }
    }
}

/// Per-term loss values of one training step (batch averages).
#[derive(Clone, Copy, Debug, Default)]
pub struct DualCvaeLosses {
    /// BCE reconstruction (both domains, Eq. 2 likelihood part).
    pub reconstruction: f32,
    /// Content-anchored KL (Eq. 3).
    pub kl: f32,
    /// Latent alignment MSE (Eq. 4).
    pub mse_align: f32,
    /// Cross-domain reconstruction (Eq. 5).
    pub cross_reconstruction: f32,
    /// MDI InfoNCE value (Eq. 6, pre-β₁).
    pub mdi: f32,
    /// ME InfoNCE value (Eq. 7, pre-β₂).
    pub me: f32,
}

impl DualCvaeLosses {
    /// The weighted total of Eq. 8.
    pub fn total(&self, beta1: f32, beta2: f32) -> f32 {
        self.reconstruction
            + self.kl
            + self.mse_align
            + self.cross_reconstruction
            + beta1 * self.mdi
            + beta2 * self.me
    }

    fn add(&mut self, other: &DualCvaeLosses) {
        self.reconstruction += other.reconstruction;
        self.kl += other.kl;
        self.mse_align += other.mse_align;
        self.cross_reconstruction += other.cross_reconstruction;
        self.mdi += other.mdi;
        self.me += other.me;
    }

    fn scale(&mut self, s: f32) {
        self.reconstruction *= s;
        self.kl *= s;
        self.mse_align *= s;
        self.cross_reconstruction *= s;
        self.mdi *= s;
        self.me *= s;
    }

    /// Averages a collection of per-batch losses.
    pub fn mean(batch: &[DualCvaeLosses]) -> DualCvaeLosses {
        let mut out = DualCvaeLosses::default();
        if batch.is_empty() {
            return out;
        }
        for l in batch {
            out.add(l);
        }
        out.scale(1.0 / batch.len() as f32);
        out
    }
}

/// A source/target CVAE pair with MDI and ME constraints.
pub struct DualCvae {
    /// The source-domain CVAE.
    pub source: Cvae,
    /// The target-domain CVAE (its content encoder and decoder form the
    /// augmentation path).
    pub target: Cvae,
    me_critic: CriticInfoNce,
    mdi_nce: InfoNce,
    config: DualCvaeConfig,
}

impl DualCvae {
    /// Builds the pair for the given catalogue sizes and content
    /// dimensionality.
    pub fn new(
        n_source_items: usize,
        n_target_items: usize,
        content_dim: usize,
        config: DualCvaeConfig,
        rng: &mut SeededRng,
    ) -> Self {
        let source = Cvae::new(
            CvaeConfig {
                n_items: n_source_items,
                content_dim,
                hidden_dim: config.hidden_dim,
                latent_dim: config.latent_dim,
            },
            rng,
        );
        let target = Cvae::new(
            CvaeConfig {
                n_items: n_target_items,
                content_dim,
                hidden_dim: config.hidden_dim,
                latent_dim: config.latent_dim,
            },
            rng,
        );
        let me_critic = CriticInfoNce::new(
            n_source_items,
            n_target_items,
            config.critic_dim,
            config.temperature,
            rng,
        );
        let mdi_nce = InfoNce::new(config.temperature);
        Self { source, target, me_critic, mdi_nce, config }
    }

    /// The configuration this pair was built with.
    pub fn config(&self) -> DualCvaeConfig {
        self.config
    }

    /// One full forward/backward pass over a shared-user batch
    /// `(r_s, r_t, x_s, x_t)`. Accumulates gradients into every parameter;
    /// the caller applies the optimizer step.
    ///
    /// Constraint terms (MDI, ME) require at least 2 rows (InfoNCE needs
    /// in-batch negatives) and are skipped otherwise.
    ///
    /// # Panics
    /// Panics on batch-size or dimensionality mismatches.
    pub fn train_step(
        &mut self,
        r_s: &Matrix,
        r_t: &Matrix,
        x_s: &Matrix,
        x_t: &Matrix,
        rng: &mut SeededRng,
    ) -> DualCvaeLosses {
        let _span = metadpa_obs::span!("dual_cvae.train_step");
        let b = r_s.rows();
        assert!(b > 0, "DualCvae::train_step: empty batch");
        assert_eq!(r_t.rows(), b, "DualCvae: r_t batch mismatch");
        assert_eq!(x_s.rows(), b, "DualCvae: x_s batch mismatch");
        assert_eq!(x_t.rows(), b, "DualCvae: x_t batch mismatch");
        let mut losses = DualCvaeLosses::default();

        // ---------------- Encoders + sampling ----------------
        let (z_s, mu_s, lv_s) = self.source.encode_and_sample(r_s, x_s, rng, Mode::Train);
        let (z_t, mu_t, lv_t) = self.target.encode_and_sample(r_t, x_t, rng, Mode::Train);
        let zx_s = self.source.content_encode(x_s, Mode::Train);
        let zx_t = self.target.content_encode(x_t, Mode::Train);

        // Gradient accumulators on the sampled latents.
        let mut dz_s = Matrix::zeros(b, self.config.latent_dim);
        let mut dz_t = Matrix::zeros(b, self.config.latent_dim);

        // ---------------- Direct reconstruction + ME ----------------
        let logits_s = self.source.decode(&z_s, x_s, Mode::Train);
        let logits_t = self.target.decode(&z_t, x_t, Mode::Train);
        let (rec_s, mut g_logits_s) = bce_with_logits(&logits_s, r_s);
        let (rec_t, mut g_logits_t) = bce_with_logits(&logits_t, r_t);
        losses.reconstruction = rec_s + rec_t;

        if self.config.enable_me && b >= 2 {
            let probs_s = logits_s.map(metadpa_nn::activation::sigmoid);
            let probs_t = logits_t.map(metadpa_nn::activation::sigmoid);
            let me = self.me_critic.forward_backward(&probs_s, &probs_t, self.config.beta2);
            losses.me = me.loss;
            // Chain through the sigmoid: dL/dlogit = dL/dp * p(1-p).
            g_logits_s.add_inplace(&me.grad_a.zip_map(&probs_s, |g, p| g * p * (1.0 - p)));
            g_logits_t.add_inplace(&me.grad_b.zip_map(&probs_t, |g, p| g * p * (1.0 - p)));
        }

        // Backprop each decoder's *direct* use before its cross use.
        dz_s.add_inplace(&self.source.backward_decoder(&g_logits_s));
        dz_t.add_inplace(&self.target.backward_decoder(&g_logits_t));

        // ---------------- Cross-domain reconstruction (Eq. 5) ----------
        // Decode source ratings from the target latent, and vice versa;
        // each term carries the 1/2 of Eq. 5.
        let logits_s_cross = self.source.decode(&z_t, x_s, Mode::Train);
        let (cross_s, g_cross_s) = bce_with_logits(&logits_s_cross, r_s);
        dz_t.add_inplace(&self.source.backward_decoder(&g_cross_s.scale(0.5)));

        let logits_t_cross = self.target.decode(&z_s, x_t, Mode::Train);
        let (cross_t, g_cross_t) = bce_with_logits(&logits_t_cross, r_t);
        dz_s.add_inplace(&self.target.backward_decoder(&g_cross_t.scale(0.5)));
        losses.cross_reconstruction = 0.5 * (cross_s + cross_t);

        // ---------------- MDI (Eq. 6) ----------------
        if self.config.enable_mdi && b >= 2 {
            let mdi = self.mdi_nce.forward(&z_s, &z_t);
            losses.mdi = mdi.loss;
            dz_s.add_scaled_inplace(&mdi.grad_a, self.config.beta1);
            dz_t.add_scaled_inplace(&mdi.grad_b, self.config.beta1);
        }

        // ---------------- KL (Eq. 3) ----------------
        let kl_s = gaussian_kl_to_anchor(&mu_s, &lv_s, &zx_s);
        let kl_t = gaussian_kl_to_anchor(&mu_t, &lv_t, &zx_t);
        losses.kl = kl_s.loss + kl_t.loss;

        // ---------------- Latent alignment MSE (Eq. 4) ----------------
        let (mse_s, g_mse_zs) = mse(&z_s, &zx_s);
        let (mse_t, g_mse_zt) = mse(&z_t, &zx_t);
        losses.mse_align = mse_s + mse_t;
        dz_s.add_inplace(&g_mse_zs);
        dz_t.add_inplace(&g_mse_zt);
        // d/d zx of ||z - zx||^2 is the negation of d/dz.
        let g_zx_s = &kl_s.grad_anchor - &g_mse_zs;
        let g_zx_t = &kl_t.grad_anchor - &g_mse_zt;

        // ---------------- Encoder backward ----------------
        self.source.backward_encoder(&dz_s, &kl_s.grad_mu, &kl_s.grad_logvar);
        self.target.backward_encoder(&dz_t, &kl_t.grad_mu, &kl_t.grad_logvar);
        self.source.backward_content_encoder(&g_zx_s);
        self.target.backward_content_encoder(&g_zx_t);

        losses
    }

    /// Loss-only evaluation on a held-out batch (deterministic: `ε = 0`).
    pub fn eval_losses(
        &mut self,
        r_s: &Matrix,
        r_t: &Matrix,
        x_s: &Matrix,
        x_t: &Matrix,
    ) -> DualCvaeLosses {
        let mut rng = SeededRng::new(0); // unused in Eval mode
        let b = r_s.rows();
        let mut losses = DualCvaeLosses::default();
        let (z_s, mu_s, lv_s) = self.source.encode_and_sample(r_s, x_s, &mut rng, Mode::Eval);
        let (z_t, mu_t, lv_t) = self.target.encode_and_sample(r_t, x_t, &mut rng, Mode::Eval);
        let zx_s = self.source.content_encode(x_s, Mode::Eval);
        let zx_t = self.target.content_encode(x_t, Mode::Eval);
        let logits_s = self.source.decode(&z_s, x_s, Mode::Eval);
        let logits_t = self.target.decode(&z_t, x_t, Mode::Eval);
        losses.reconstruction =
            bce_with_logits(&logits_s, r_s).0 + bce_with_logits(&logits_t, r_t).0;
        if self.config.enable_me && b >= 2 {
            let probs_s = logits_s.map(metadpa_nn::activation::sigmoid);
            let probs_t = logits_t.map(metadpa_nn::activation::sigmoid);
            losses.me = self.me_critic.loss(&probs_s, &probs_t);
        }
        let logits_s_cross = self.source.decode(&z_t, x_s, Mode::Eval);
        let logits_t_cross = self.target.decode(&z_s, x_t, Mode::Eval);
        losses.cross_reconstruction = 0.5
            * (bce_with_logits(&logits_s_cross, r_s).0 + bce_with_logits(&logits_t_cross, r_t).0);
        if self.config.enable_mdi && b >= 2 {
            losses.mdi = self.mdi_nce.forward(&z_s, &z_t).loss;
        }
        losses.kl = gaussian_kl_to_anchor(&mu_s, &lv_s, &zx_s).loss
            + gaussian_kl_to_anchor(&mu_t, &lv_t, &zx_t).loss;
        losses.mse_align = mse(&z_s, &zx_s).0 + mse(&z_t, &zx_t).0;
        losses
    }

    /// The augmentation path (Fig. 1 red line): generate target-domain
    /// rating probabilities from target content alone.
    pub fn generate_target_ratings(&mut self, target_content: &Matrix) -> Matrix {
        let _span = metadpa_obs::span!("dual_cvae.generate");
        self.target.generate_from_content(target_content)
    }
}

impl Module for DualCvae {
    fn forward(&mut self, _input: &Matrix, _mode: Mode) -> Matrix {
        panic!(
            "DualCvae::forward is intentionally not implemented: call DualCvae::train_step \
             (training) or generate_target_ratings (augmentation); the Module impl exists \
             only so optimizers can walk the parameters"
        )
    }

    fn backward(&mut self, _grad_output: &Matrix) -> Matrix {
        panic!(
            "DualCvae::backward is intentionally not implemented: gradients flow inside \
             DualCvae::train_step; the Module impl exists only so optimizers can walk the \
             parameters"
        )
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.source.visit_params(visitor);
        self.target.visit_params(visitor);
        self.me_critic.visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_nn::module::zero_grad;
    use metadpa_nn::optim::{Adam, Optimizer};

    fn toy_batch(rng: &mut SeededRng, b: usize) -> (Matrix, Matrix, Matrix, Matrix) {
        let r_s = Matrix::from_fn(b, 15, |_, _| if rng.bernoulli(0.25) { 1.0 } else { 0.0 });
        let r_t = Matrix::from_fn(b, 12, |_, _| if rng.bernoulli(0.25) { 1.0 } else { 0.0 });
        let x_s = rng.uniform_matrix(b, 6, 0.0, 1.0);
        let x_t = rng.uniform_matrix(b, 6, 0.0, 1.0);
        (r_s, r_t, x_s, x_t)
    }

    fn small_config() -> DualCvaeConfig {
        DualCvaeConfig { hidden_dim: 16, latent_dim: 5, critic_dim: 8, ..DualCvaeConfig::default() }
    }

    #[test]
    fn train_step_produces_finite_losses_and_gradients() {
        let mut rng = SeededRng::new(1);
        let mut dual = DualCvae::new(15, 12, 6, small_config(), &mut rng);
        let (r_s, r_t, x_s, x_t) = toy_batch(&mut rng, 6);
        zero_grad(&mut dual);
        let losses = dual.train_step(&r_s, &r_t, &x_s, &x_t, &mut rng);
        for v in [
            losses.reconstruction,
            losses.kl,
            losses.mse_align,
            losses.cross_reconstruction,
            losses.mdi,
            losses.me,
        ] {
            assert!(v.is_finite(), "loss term {v} not finite");
        }
        let mut grad_norm = 0.0;
        dual.visit_params(&mut |p| grad_norm += p.grad.frobenius_norm());
        assert!(grad_norm > 0.0, "every parameter group should receive gradient");
        assert!(grad_norm.is_finite());
    }

    #[test]
    fn training_reduces_the_total_objective() {
        let mut rng = SeededRng::new(2);
        let mut dual = DualCvae::new(15, 12, 6, small_config(), &mut rng);
        let (r_s, r_t, x_s, x_t) = toy_batch(&mut rng, 10);
        let mut opt = Adam::new(0.005);
        let before = dual.eval_losses(&r_s, &r_t, &x_s, &x_t);
        for _ in 0..120 {
            zero_grad(&mut dual);
            let _ = dual.train_step(&r_s, &r_t, &x_s, &x_t, &mut rng);
            opt.step(&mut dual);
        }
        let after = dual.eval_losses(&r_s, &r_t, &x_s, &x_t);
        let cfg = dual.config();
        assert!(
            after.total(cfg.beta1, cfg.beta2) < before.total(cfg.beta1, cfg.beta2),
            "objective should drop: {:?} -> {:?}",
            before,
            after
        );
        assert!(
            after.reconstruction < before.reconstruction,
            "reconstruction should improve: {} -> {}",
            before.reconstruction,
            after.reconstruction
        );
    }

    #[test]
    fn disabled_constraints_report_zero_and_skip_gradients() {
        let mut rng = SeededRng::new(3);
        let cfg = DualCvaeConfig { enable_mdi: false, enable_me: false, ..small_config() };
        let mut dual = DualCvae::new(15, 12, 6, cfg, &mut rng);
        let (r_s, r_t, x_s, x_t) = toy_batch(&mut rng, 5);
        zero_grad(&mut dual);
        let losses = dual.train_step(&r_s, &r_t, &x_s, &x_t, &mut rng);
        assert_eq!(losses.mdi, 0.0);
        assert_eq!(losses.me, 0.0);
        // Critic heads receive no gradient when ME is disabled.
        let mut critic_grad = 0.0;
        dual.me_critic.visit_params(&mut |p| critic_grad += p.grad.frobenius_norm());
        assert_eq!(critic_grad, 0.0);
    }

    #[test]
    fn single_row_batch_skips_infonce_terms() {
        let mut rng = SeededRng::new(4);
        let mut dual = DualCvae::new(15, 12, 6, small_config(), &mut rng);
        let (r_s, r_t, x_s, x_t) = toy_batch(&mut rng, 1);
        let losses = dual.train_step(&r_s, &r_t, &x_s, &x_t, &mut rng);
        assert_eq!(losses.mdi, 0.0);
        assert_eq!(losses.me, 0.0);
        assert!(losses.reconstruction.is_finite());
    }

    #[test]
    fn mdi_training_raises_latent_mutual_information() {
        // Train with a strong MDI weight; the InfoNCE loss between z_s and
        // z_t on held-out data should end below its untrained value
        // (i.e. the latents of the same shared user become aligned).
        let mut rng = SeededRng::new(5);
        let cfg = DualCvaeConfig { beta1: 2.0, enable_me: false, ..small_config() };
        let mut dual = DualCvae::new(15, 12, 6, cfg, &mut rng);
        let (r_s, r_t, x_s, x_t) = toy_batch(&mut rng, 12);
        let mut opt = Adam::new(0.005);
        let before = dual.eval_losses(&r_s, &r_t, &x_s, &x_t).mdi;
        for _ in 0..150 {
            zero_grad(&mut dual);
            let _ = dual.train_step(&r_s, &r_t, &x_s, &x_t, &mut rng);
            opt.step(&mut dual);
        }
        let after = dual.eval_losses(&r_s, &r_t, &x_s, &x_t).mdi;
        assert!(after < before, "MDI InfoNCE should drop: {before} -> {after}");
    }

    #[test]
    fn generated_ratings_are_probabilities() {
        let mut rng = SeededRng::new(6);
        let mut dual = DualCvae::new(15, 12, 6, small_config(), &mut rng);
        let x_t = rng.uniform_matrix(7, 6, 0.0, 1.0);
        let gen = dual.generate_target_ratings(&x_t);
        assert_eq!(gen.shape(), (7, 12));
        assert!(gen.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn losses_mean_averages_terms() {
        let a = DualCvaeLosses { reconstruction: 1.0, kl: 2.0, ..Default::default() };
        let b = DualCvaeLosses { reconstruction: 3.0, kl: 0.0, ..Default::default() };
        let m = DualCvaeLosses::mean(&[a, b]);
        assert_eq!(m.reconstruction, 2.0);
        assert_eq!(m.kl, 1.0);
        assert_eq!(DualCvaeLosses::mean(&[]).reconstruction, 0.0);
    }

    #[test]
    #[should_panic(expected = "call DualCvae::train_step")]
    fn module_forward_names_the_real_entry_point() {
        let mut rng = SeededRng::new(7);
        let mut dual = DualCvae::new(15, 12, 6, small_config(), &mut rng);
        let _ = dual.forward(&Matrix::zeros(1, 15), Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "gradients flow inside DualCvae::train_step")]
    fn module_backward_names_the_real_entry_point() {
        let mut rng = SeededRng::new(7);
        let mut dual = DualCvae::new(15, 12, 6, small_config(), &mut rng);
        let _ = dual.backward(&Matrix::zeros(1, 12));
    }
}

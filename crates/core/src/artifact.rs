//! Exported serving artifacts: everything a cold-start inference server
//! needs, detached from the training pipeline.
//!
//! An [`Artifact`] is the self-contained value a fitted [`crate::MetaDpa`]
//! exports ([`crate::MetaDpa::export_artifact`]): the preference-model
//! parameters as a named-tensor table, the target domain's content
//! matrices, and enough metadata ([`ArtifactMeta`]) to rebuild the exact
//! model and to refuse mismatched data at load time. `metadpa-serve`
//! persists it in the `metadpa-ckpt/v1` on-disk format; this module is the
//! in-memory contract shared by exporter, checkpoint codec and server.
//!
//! [`Artifact::into_recommender`] rebuilds a forward-only scorer,
//! [`ArtifactRecommender`], that reuses the *same* [`MetaLearner`] code
//! paths as the offline pipeline — scoring and serve-time MAML adaptation
//! are therefore bit-identical to what `fit`/`fine_tune`/`score` produce
//! in memory, which is what makes the export → reload round trip exact.

use std::fmt;

use metadpa_data::task::Task;
use metadpa_metrics::ranking::top_k_indices;
use metadpa_nn::module::{named_snapshot, restore, restore_named, snapshot};
use metadpa_tensor::{simd, Matrix, SeededRng};

use crate::augmentation::DiversityReport;
use crate::maml::{MamlConfig, MetaLearner};
use crate::preference::PreferenceConfig;

/// Schema identifier embedded in every exported artifact.
pub const ARTIFACT_SCHEMA: &str = "metadpa-artifact/v1";

/// Numeric serving precision an artifact was exported with.
///
/// The model's in-memory parameters are f32 either way; the variants
/// select the on-disk tensor encoding (f64-LE vs f32-LE, see the serve
/// crate's checkpoint codec) and the serve-time kernel family. [`Precision::F64`]
/// is the default and scores bit-identically to the training pipeline;
/// [`Precision::F32`] opts the whole catalogue-ranking path into the
/// fused-FMA kernels, trading the bit-identity guarantee for throughput
/// within the documented epsilon (DESIGN §14).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Default: f64-LE tensor encoding, exact kernels at serve time.
    #[default]
    F64,
    /// Opt-in: f32-LE tensor encoding, fused-FMA kernels at serve time.
    F32,
}

impl Precision {
    /// Stable lowercase name (`"f64"` / `"f32"`), used by the checkpoint
    /// metadata and the serving `/health` document.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// Name prefix of the preference-model tensors in the artifact's table
/// (`preference.p000`, `preference.p001`, …).
pub const PARAM_PREFIX: &str = "preference";

/// Cumulative probabilities of the exported score fingerprint — fixed so
/// every artifact's sketch is comparable to every other's.
pub const FINGERPRINT_PROBS: [f32; 9] = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];

/// Quantile sketch of the training-time ranking-score distribution.
///
/// Stamped into [`ArtifactMeta`] at export so the serving layer can compare
/// the live score distribution against training and report drift: the
/// fingerprint's quantile values become frozen bin thresholds, and the
/// drift statistic is the sup-distance between the live windowed empirical
/// CDF at those thresholds and `probs`. An empty fingerprint (artifacts
/// exported before this field existed, or degenerate training data)
/// disables drift tracking.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScoreFingerprint {
    /// Cumulative probabilities, ascending ([`FINGERPRINT_PROBS`]).
    pub probs: Vec<f32>,
    /// Training-score quantiles at those probabilities, ascending.
    pub quantiles: Vec<f32>,
}

impl ScoreFingerprint {
    /// Whether the sketch carries no data (drift tracking disabled).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Sketches `scores` at [`FINGERPRINT_PROBS`] (ceil-rank quantiles over
    /// the finite values); empty when there is nothing finite to sketch.
    pub fn from_scores(scores: &[f32]) -> Self {
        let mut finite: Vec<f32> = scores.iter().copied().filter(|s| s.is_finite()).collect();
        if finite.is_empty() {
            return Self::default();
        }
        finite.sort_by(f32::total_cmp);
        let n = finite.len();
        let quantiles = FINGERPRINT_PROBS
            .iter()
            .map(|&p| {
                // The epsilon absorbs f32→f64 widening error (0.99f32 is
                // 0.9900000095… as f64, which would overshoot the ceil rank).
                let rank = ((p as f64 * n as f64 - 1e-6).ceil() as usize).clamp(1, n);
                finite[rank - 1]
            })
            .collect();
        Self { probs: FINGERPRINT_PROBS.to_vec(), quantiles }
    }
}

/// Provenance and architecture metadata stored alongside the tensors.
#[derive(Clone, Debug)]
pub struct ArtifactMeta {
    /// Always [`ARTIFACT_SCHEMA`] for artifacts this crate writes.
    pub schema: String,
    /// Display name of the exporting model (e.g. `"MetaDPA"`).
    pub model_name: String,
    /// Git revision of the exporting build (short hash, `-dirty` suffixed).
    pub git_rev: String,
    /// Structural fingerprint of the training world
    /// ([`metadpa_data::domain::World::fingerprint_hex`]); a server can
    /// compare it against live data before answering by-id requests.
    pub data_fingerprint: String,
    /// Preference-model architecture (content_dim reflects the data).
    pub preference: PreferenceConfig,
    /// MAML hyper-parameters; `inner_lr` and `finetune_steps` define the
    /// serve-time adaptation contract.
    pub maml: MamlConfig,
    /// Diversity statistics of the augmentation that trained this model.
    pub diversity: DiversityReport,
    /// Training-score-distribution sketch for serve-time drift detection;
    /// empty on artifacts exported before the field existed.
    pub score_fingerprint: ScoreFingerprint,
    /// Run-ledger key of the training run that produced this artifact
    /// (`run-<seed>-<config fingerprint>-<seq>`, see
    /// [`metadpa_obs::run`]); empty on artifacts exported before the run
    /// ledger existed or outside an instrumented pipeline run. Joins the
    /// checkpoint to its training trace, BENCH documents and the serving
    /// `/health` document.
    pub run_id: String,
    /// Serving precision ([`Precision::F64`] unless the artifact was
    /// exported with `--precision f32`); artifacts written before the
    /// field existed load as [`Precision::F64`].
    pub precision: Precision,
}

/// A self-contained exported model: metadata, named parameter tensors and
/// the target domain's content matrices.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Provenance and architecture.
    pub meta: ArtifactMeta,
    /// Preference-model parameters from
    /// [`metadpa_nn::module::named_snapshot`] under [`PARAM_PREFIX`].
    pub params: Vec<(String, Matrix)>,
    /// `n_users x content_dim` user content of the target domain.
    pub user_content: Matrix,
    /// `n_items x content_dim` item content of the target domain.
    pub item_content: Matrix,
}

/// Typed failures of artifact reconstruction and serving-side requests.
///
/// These are *request/data* errors, never panics: the server maps them to
/// 4xx responses (e.g. [`ArtifactError::UserOutOfRange`] → 422).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// A by-id request referenced a user the artifact does not know.
    UserOutOfRange {
        /// The offending user id.
        user: usize,
        /// Number of users the artifact was exported with.
        n_users: usize,
    },
    /// A support pair referenced an item beyond the catalogue.
    ItemOutOfRange {
        /// The offending item id.
        item: usize,
        /// Number of items the artifact was exported with.
        n_items: usize,
    },
    /// Adaptation was requested with an empty support set.
    EmptySupport,
    /// A support label was NaN or infinite.
    NonFiniteLabel {
        /// The item whose label was non-finite.
        item: usize,
    },
    /// A content vector (or content matrix) has the wrong width.
    ContentDimMismatch {
        /// Which input was malformed (`"user_content"`, `"request"`, …).
        what: &'static str,
        /// Observed width.
        got: usize,
        /// Width the artifact's architecture expects.
        want: usize,
    },
    /// The named-tensor table does not match the architecture in the
    /// metadata (wrong names, shapes or count).
    BadParams(String),
    /// Scoring produced NaN or infinity — the artifact's parameters are
    /// corrupt (but CRC-valid) or overflow-producing. Reported per request
    /// instead of panicking inside `top_k_indices`, which would kill an
    /// HTTP worker despite the server's "never panics" contract.
    NonFiniteScores {
        /// The first catalogue item whose score was non-finite.
        item: usize,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::UserOutOfRange { user, n_users } => {
                write!(f, "user id {user} out of range: artifact has {n_users} users")
            }
            ArtifactError::ItemOutOfRange { item, n_items } => {
                write!(f, "item id {item} out of range: artifact has {n_items} items")
            }
            ArtifactError::EmptySupport => {
                write!(f, "adaptation requires a non-empty support set")
            }
            ArtifactError::NonFiniteLabel { item } => {
                write!(f, "support label for item {item} is not finite")
            }
            ArtifactError::ContentDimMismatch { what, got, want } => {
                write!(f, "{what} has content width {got}, artifact expects {want}")
            }
            ArtifactError::BadParams(msg) => write!(f, "parameter table mismatch: {msg}"),
            ArtifactError::NonFiniteScores { item } => {
                write!(f, "scoring produced a non-finite value at item {item}")
            }
        }
    }
}

impl ArtifactError {
    /// Stable slug naming this error's cause, used by the serving layer's
    /// error-taxonomy counters (`serve.errors.422.<cause>`).
    pub fn cause(&self) -> &'static str {
        match self {
            ArtifactError::UserOutOfRange { .. } => "user_out_of_range",
            ArtifactError::ItemOutOfRange { .. } => "item_out_of_range",
            ArtifactError::EmptySupport => "empty_support",
            ArtifactError::NonFiniteLabel { .. } => "non_finite_label",
            ArtifactError::ContentDimMismatch { .. } => "content_dim_mismatch",
            ArtifactError::BadParams(_) => "bad_params",
            ArtifactError::NonFiniteScores { .. } => "non_finite_scores",
        }
    }
}

impl std::error::Error for ArtifactError {}

impl Artifact {
    /// Rebuilds the forward-only scorer from this artifact.
    ///
    /// Validates that the content matrices match the recorded architecture
    /// and that the parameter table restores cleanly into a freshly built
    /// [`crate::PreferenceModel`] of that architecture.
    pub fn into_recommender(self) -> Result<ArtifactRecommender, ArtifactError> {
        let Artifact { meta, params, user_content, item_content } = self;
        let want = meta.preference.content_dim;
        if user_content.cols() != want {
            return Err(ArtifactError::ContentDimMismatch {
                what: "user_content",
                got: user_content.cols(),
                want,
            });
        }
        if item_content.cols() != want {
            return Err(ArtifactError::ContentDimMismatch {
                what: "item_content",
                got: item_content.cols(),
                want,
            });
        }
        // The RNG only sets the initial weights, which `restore_named`
        // overwrites entirely — any seed yields the same recommender.
        let mut rng = SeededRng::new(0);
        let mut learner = MetaLearner::new(meta.preference, meta.maml, &mut rng);
        restore_named(learner.model_mut(), PARAM_PREFIX, &params)
            .map_err(ArtifactError::BadParams)?;
        let theta = snapshot(learner.model_mut());
        let catalogue: Vec<usize> = (0..item_content.rows()).collect();
        // Precompute the item embedding table at θ under the same kernel
        // policy scoring will use, so every serve instance of this
        // artifact holds the identical table: per-row accumulation makes
        // it equal (bitwise) to inline embedding for the θ path.
        let fused = meta.precision == Precision::F32;
        let item_embeds = if fused {
            simd::with_policy(simd::Policy::Fused, || learner.embed_items(&item_content))
        } else {
            learner.embed_items(&item_content)
        };
        Ok(ArtifactRecommender {
            meta,
            learner,
            theta,
            user_content,
            item_content,
            item_embeds,
            fused,
            catalogue,
            scores: Vec::new(),
        })
    }
}

/// The serving-side scorer rebuilt from an [`Artifact`].
///
/// Wraps a [`MetaLearner`] pinned at the exported parameters θ. Every
/// scoring call runs at θ unless explicitly given an adapted parameter set
/// (produced by [`ArtifactRecommender::adapt_user`] /
/// [`ArtifactRecommender::adapt_content`]); adapted scoring rewinds to θ
/// afterwards, so the recommender itself never drifts.
pub struct ArtifactRecommender {
    meta: ArtifactMeta,
    learner: MetaLearner,
    theta: Vec<Matrix>,
    user_content: Matrix,
    item_content: Matrix,
    /// Item embedding table precomputed at θ (`n_items x embed_dim`):
    /// θ-scoring ranks straight from it, skipping the per-request item
    /// embedding matmul. Valid only at θ — adapted-parameter requests run
    /// the full pass over `item_content` instead.
    item_embeds: Matrix,
    /// Whether ranking runs under the fused-FMA kernel policy
    /// (`meta.precision == Precision::F32`).
    fused: bool,
    /// `0..n_items`, built once at reload: every ranking request scores
    /// the whole catalogue, so the index list never changes.
    catalogue: Vec<usize>,
    /// Per-request score buffer, reused across calls.
    scores: Vec<f32>,
}

impl ArtifactRecommender {
    /// The artifact's metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// Number of users the artifact was exported with.
    pub fn n_users(&self) -> usize {
        self.user_content.rows()
    }

    /// Number of items in the catalogue.
    pub fn n_items(&self) -> usize {
        self.item_content.rows()
    }

    /// Content vector width.
    pub fn content_dim(&self) -> usize {
        self.meta.preference.content_dim
    }

    /// The exported meta-parameters θ (one matrix per model parameter, in
    /// visit order) — the rewind point for all adaptation.
    pub fn theta(&self) -> &[Matrix] {
        &self.theta
    }

    /// The full-catalogue scores of the most recent successful ranking
    /// call (the reused per-request buffer). The serving layer samples
    /// these into its live drift window; empty before the first request.
    pub fn last_scores(&self) -> &[f32] {
        &self.scores
    }

    /// Column mean of the user-content matrix: the "average user" vector
    /// used for cold requests that carry no content of their own.
    pub fn mean_user_content(&self) -> Vec<f32> {
        let rows = self.user_content.rows();
        let mut mean = vec![0.0f32; self.user_content.cols()];
        for r in 0..rows {
            for (m, v) in mean.iter_mut().zip(self.user_content.row(r)) {
                *m += v;
            }
        }
        let inv = 1.0 / rows.max(1) as f32;
        for m in &mut mean {
            *m *= inv;
        }
        mean
    }

    fn check_user(&self, user: usize) -> Result<(), ArtifactError> {
        if user >= self.n_users() {
            return Err(ArtifactError::UserOutOfRange { user, n_users: self.n_users() });
        }
        Ok(())
    }

    fn check_content(&self, content: &[f32]) -> Result<(), ArtifactError> {
        if content.len() != self.content_dim() {
            return Err(ArtifactError::ContentDimMismatch {
                what: "request content",
                got: content.len(),
                want: self.content_dim(),
            });
        }
        Ok(())
    }

    fn check_support(&self, support: &[(usize, f32)]) -> Result<(), ArtifactError> {
        if support.is_empty() {
            return Err(ArtifactError::EmptySupport);
        }
        for &(item, label) in support {
            if item >= self.n_items() {
                return Err(ArtifactError::ItemOutOfRange { item, n_items: self.n_items() });
            }
            if !label.is_finite() {
                return Err(ArtifactError::NonFiniteLabel { item });
            }
        }
        Ok(())
    }

    /// Validates one streaming implicit-feedback event against this
    /// artifact: the user must be known, the item in the catalogue and the
    /// label finite — the same checks adaptation applies to support pairs,
    /// surfaced as an entry point so the feedback ingestion endpoint can
    /// reject out-of-catalogue events (422) *before* they reach the
    /// append-only log, keeping every logged event replayable.
    pub fn validate_event(
        &self,
        user: usize,
        item: usize,
        label: f32,
    ) -> Result<(), ArtifactError> {
        self.check_user(user)?;
        if item >= self.n_items() {
            return Err(ArtifactError::ItemOutOfRange { item, n_items: self.n_items() });
        }
        if !label.is_finite() {
            return Err(ArtifactError::NonFiniteLabel { item });
        }
        Ok(())
    }

    /// Scores the whole catalogue for `content` and returns the top `k`
    /// `(item, score)` pairs, best first. With `params` the adapted
    /// parameter set is used for this call only (θ is restored after —
    /// including on the error path, so a poisoned request cannot corrupt
    /// the recommender for later callers).
    ///
    /// Non-finite scores are rejected here rather than handed to
    /// [`top_k_indices`], whose total-order sort panics on NaN.
    /// Top-`k` recommendations for a known (warm) user by id, best first.
    ///
    /// Pass `params` to score with an adapted parameter set from
    /// [`ArtifactRecommender::adapt_user`]; θ is untouched either way.
    pub fn recommend(
        &mut self,
        user: usize,
        k: usize,
        params: Option<&[Matrix]>,
    ) -> Result<Vec<(usize, f32)>, ArtifactError> {
        self.check_user(user)?;
        // Destructure so the user-content row can be borrowed alongside
        // the learner and score buffer (no `.to_vec()` of the row).
        let Self {
            learner,
            theta,
            user_content,
            item_content,
            item_embeds,
            fused,
            catalogue,
            scores,
            ..
        } = self;
        rank_catalogue(
            learner,
            theta,
            item_content,
            item_embeds,
            catalogue,
            scores,
            user_content.row(user),
            k,
            params,
            *fused,
        )
    }

    /// Top-`k` recommendations for a raw content vector (a user the
    /// artifact has never seen), best first.
    pub fn recommend_content(
        &mut self,
        content: &[f32],
        k: usize,
        params: Option<&[Matrix]>,
    ) -> Result<Vec<(usize, f32)>, ArtifactError> {
        self.check_content(content)?;
        let Self { learner, theta, item_content, item_embeds, fused, catalogue, scores, .. } = self;
        rank_catalogue(
            learner,
            theta,
            item_content,
            item_embeds,
            catalogue,
            scores,
            content,
            k,
            params,
            *fused,
        )
    }

    /// Serve-time MAML adaptation for a known user: runs the trained
    /// inner loop ([`MetaLearner::fine_tune`], `finetune_steps` SGD steps
    /// at `inner_lr`) on the given support set starting from θ, returns
    /// the adapted parameters, and rewinds the model to θ.
    ///
    /// Deterministic: the same support set always yields the same
    /// parameters, so results are cacheable by user.
    pub fn adapt_user(
        &mut self,
        user: usize,
        support: &[(usize, f32)],
    ) -> Result<Vec<Matrix>, ArtifactError> {
        self.check_user(user)?;
        self.check_support(support)?;
        // Retained clone: `Task` owns its support pairs by contract.
        let task = Task { user, support: support.to_vec(), query: Vec::new() };
        restore(self.learner.model_mut(), &self.theta);
        self.learner.fine_tune(std::slice::from_ref(&task), &self.user_content, &self.item_content);
        // Retained allocation: the adapted parameter set is the return
        // value and must outlive the rewind below.
        let adapted = snapshot(self.learner.model_mut());
        restore(self.learner.model_mut(), &self.theta);
        Ok(adapted)
    }

    /// Serve-time MAML adaptation for a brand-new user described only by a
    /// content vector and a support set. Same contract as
    /// [`ArtifactRecommender::adapt_user`].
    pub fn adapt_content(
        &mut self,
        content: &[f32],
        support: &[(usize, f32)],
    ) -> Result<Vec<Matrix>, ArtifactError> {
        self.check_content(content)?;
        self.check_support(support)?;
        let uc = Matrix::from_vec(1, content.len(), content.to_vec());
        let task = Task { user: 0, support: support.to_vec(), query: Vec::new() };
        restore(self.learner.model_mut(), &self.theta);
        self.learner.fine_tune(std::slice::from_ref(&task), &uc, &self.item_content);
        let adapted = snapshot(self.learner.model_mut());
        restore(self.learner.model_mut(), &self.theta);
        Ok(adapted)
    }
}

/// Scores the whole catalogue for `content` and returns the top `k`
/// `(item, score)` pairs, best first. With `params` the adapted parameter
/// set is used for this call only; θ is restored after — *before* the
/// non-finite check, so a poisoned request cannot corrupt the recommender
/// for later callers.
///
/// Free-standing (over [`ArtifactRecommender`]'s destructured fields) so
/// `recommend` can lend the user-content row and the reused score buffer
/// at the same time. Non-finite scores are rejected here rather than
/// handed to [`top_k_indices`], whose total-order sort panics on NaN.
#[allow(clippy::too_many_arguments)]
fn rank_catalogue(
    learner: &mut MetaLearner,
    theta: &[Matrix],
    item_content: &Matrix,
    item_embeds: &Matrix,
    catalogue: &[usize],
    scores: &mut Vec<f32>,
    content: &[f32],
    k: usize,
    params: Option<&[Matrix]>,
    fused: bool,
) -> Result<Vec<(usize, f32)>, ArtifactError> {
    let _sp = metadpa_obs::span!("rank.catalogue");
    if fused {
        simd::with_policy(simd::Policy::Fused, || {
            score_catalogue(
                learner,
                theta,
                item_content,
                item_embeds,
                catalogue,
                scores,
                content,
                params,
            );
        });
    } else {
        score_catalogue(
            learner,
            theta,
            item_content,
            item_embeds,
            catalogue,
            scores,
            content,
            params,
        );
    }
    if let Some(item) = scores.iter().position(|s| !s.is_finite()) {
        return Err(ArtifactError::NonFiniteScores { item });
    }
    // The returned ranking allocates by API contract: callers own it.
    Ok(top_k_indices(scores, k).into_iter().map(|i| (i, scores[i])).collect())
}

/// The scoring half of [`rank_catalogue`]: θ requests rank straight from
/// the precomputed embedding table; adapted-parameter requests restore the
/// adapted set, run the full pass over the raw item content (the table was
/// built at θ and would be stale), and rewind to θ before returning — the
/// rewind runs *before* the caller's non-finite check, so a poisoned
/// request cannot corrupt the recommender for later callers.
#[allow(clippy::too_many_arguments)]
fn score_catalogue(
    learner: &mut MetaLearner,
    theta: &[Matrix],
    item_content: &Matrix,
    item_embeds: &Matrix,
    catalogue: &[usize],
    scores: &mut Vec<f32>,
    content: &[f32],
    params: Option<&[Matrix]>,
) {
    if let Some(p) = params {
        restore(learner.model_mut(), p);
        {
            let _k = metadpa_obs::span!("kernels.score");
            learner.score_into(content, item_content, catalogue, scores);
        }
        restore(learner.model_mut(), theta);
    } else {
        let _k = metadpa_obs::span!("kernels.score");
        learner.score_embedded_into(content, item_embeds, catalogue, scores);
    }
}

/// Builds an [`Artifact`] directly from a live [`MetaLearner`] plus the
/// content matrices it was trained against — the exporter shared by
/// [`crate::MetaDpa::export_artifact`] and tests. `run_id` is the
/// run-ledger key of the producing training run (`""` when the caller has
/// none, e.g. a hand-built test artifact).
#[allow(clippy::too_many_arguments)]
pub fn artifact_from_learner(
    learner: &mut MetaLearner,
    model_name: &str,
    git_rev: String,
    data_fingerprint: String,
    diversity: DiversityReport,
    user_content: Matrix,
    item_content: Matrix,
    run_id: String,
) -> Artifact {
    let score_fingerprint = training_score_fingerprint(learner, &user_content, &item_content);
    Artifact {
        meta: ArtifactMeta {
            schema: ARTIFACT_SCHEMA.to_string(),
            model_name: model_name.to_string(),
            git_rev,
            data_fingerprint,
            preference: learner.model().config(),
            maml: learner.config(),
            diversity,
            score_fingerprint,
            run_id,
            precision: Precision::F64,
        },
        params: named_snapshot(learner.model_mut(), PARAM_PREFIX),
        user_content,
        item_content,
    }
}

/// Sketches the model's ranking-score distribution over the training
/// population: full-catalogue scores for up to 64 stride-sampled users.
/// Forward passes only — θ, the RNG, and the exported tensors are
/// untouched, so stamping the fingerprint never changes what is exported.
fn training_score_fingerprint(
    learner: &mut MetaLearner,
    user_content: &Matrix,
    item_content: &Matrix,
) -> ScoreFingerprint {
    let n_users = user_content.rows();
    if n_users == 0 || item_content.rows() == 0 {
        return ScoreFingerprint::default();
    }
    let catalogue: Vec<usize> = (0..item_content.rows()).collect();
    let stride = n_users.div_ceil(64).max(1);
    let mut all = Vec::new();
    let mut user = 0;
    while user < n_users {
        all.extend(learner.score(user_content.row(user), item_content, &catalogue));
        user += stride;
    }
    ScoreFingerprint::from_scores(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_parts(seed: u64) -> (MetaLearner, Matrix, Matrix) {
        let pref = PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] };
        let maml = MamlConfig { finetune_steps: 2, ..MamlConfig::default() };
        let mut rng = SeededRng::new(seed);
        let learner = MetaLearner::new(pref, maml, &mut rng);
        let user_content = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let item_content = rng.uniform_matrix(9, 6, -1.0, 1.0);
        (learner, user_content, item_content)
    }

    fn tiny_artifact(seed: u64) -> Artifact {
        let (mut learner, uc, ic) = tiny_parts(seed);
        artifact_from_learner(
            &mut learner,
            "unit",
            "test-rev".into(),
            "0000000000000000".into(),
            DiversityReport::default(),
            uc,
            ic,
            String::new(),
        )
    }

    #[test]
    fn reloaded_recommender_matches_the_source_model_exactly() {
        let (mut learner, uc, ic) = tiny_parts(11);
        let artifact = artifact_from_learner(
            &mut learner,
            "unit",
            "test-rev".into(),
            "0000000000000000".into(),
            DiversityReport::default(),
            uc.clone(),
            ic.clone(),
            String::new(),
        );
        let mut rec = artifact.into_recommender().expect("valid artifact");
        assert_eq!(rec.n_users(), 4);
        assert_eq!(rec.n_items(), 9);
        assert_eq!(rec.meta().model_name, "unit");

        // Bit-exact agreement with scoring through the live learner.
        let items: Vec<usize> = (0..ic.rows()).collect();
        for user in 0..uc.rows() {
            let scores = learner.score(uc.row(user), &ic, &items);
            let want: Vec<(usize, f32)> =
                top_k_indices(&scores, 3).into_iter().map(|i| (i, scores[i])).collect();
            assert_eq!(rec.recommend(user, 3, None).unwrap(), want, "user {user}");
        }
    }

    #[test]
    fn adaptation_is_deterministic_and_rewinds_theta() {
        let mut rec = tiny_artifact(12).into_recommender().expect("valid artifact");
        let support = vec![(0usize, 1.0f32), (3, 0.0), (7, 1.0)];
        let base = rec.recommend(1, 5, None).unwrap();

        let adapted = rec.adapt_user(1, &support).expect("adapt");
        let again = rec.adapt_user(1, &support).expect("adapt twice");
        assert_eq!(adapted, again, "same support must yield the same parameters");
        assert_ne!(adapted, rec.theta(), "adaptation must move the parameters");

        let adapted_list = rec.recommend(1, 5, Some(&adapted)).unwrap();
        let base_after = rec.recommend(1, 5, None).unwrap();
        assert_eq!(base, base_after, "θ must be untouched by adapted scoring");
        // The adapted list may or may not reorder, but the scores change.
        assert_ne!(adapted_list, base);

        // Content-based adaptation works on the "average user" vector and
        // produces a full parameter set of the same shape.
        let mean = rec.mean_user_content();
        assert_eq!(mean.len(), rec.content_dim());
        rec.recommend_content(&mean, 2, None).expect("mean content scores");
        let by_content = rec.adapt_content(&mean, &support).expect("content adapt");
        assert_eq!(by_content.len(), adapted.len());
    }

    #[test]
    fn exported_fingerprint_sketches_training_scores() {
        let artifact = tiny_artifact(16);
        let fp = &artifact.meta.score_fingerprint;
        assert_eq!(fp.probs.len(), FINGERPRINT_PROBS.len());
        assert_eq!(fp.quantiles.len(), fp.probs.len());
        for w in fp.quantiles.windows(2) {
            assert!(w[0] <= w[1], "quantiles must ascend: {:?}", fp.quantiles);
        }
        assert!(fp.quantiles.iter().all(|q| q.is_finite()));

        // The sketch itself: ceil-rank over the finite values only.
        assert!(ScoreFingerprint::from_scores(&[]).is_empty());
        assert!(ScoreFingerprint::from_scores(&[f32::NAN, f32::INFINITY]).is_empty());
        let ramp: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let sketch = ScoreFingerprint::from_scores(&ramp);
        assert_eq!(sketch.quantiles[4], 50.0, "p50 of 1..=100");
        assert_eq!(sketch.quantiles[8], 99.0, "p99 of 1..=100");
    }

    #[test]
    fn last_scores_expose_the_most_recent_full_catalogue_ranking() {
        let mut rec = tiny_artifact(17).into_recommender().expect("valid artifact");
        assert!(rec.last_scores().is_empty(), "no request yet");
        rec.recommend(0, 3, None).expect("recommend");
        assert_eq!(rec.last_scores().len(), rec.n_items());
        assert!(rec.last_scores().iter().all(|s| s.is_finite()));
    }

    #[test]
    fn request_errors_are_typed_not_panics() {
        let mut rec = tiny_artifact(13).into_recommender().expect("valid artifact");
        assert_eq!(
            rec.recommend(99, 3, None).unwrap_err(),
            ArtifactError::UserOutOfRange { user: 99, n_users: 4 }
        );
        assert_eq!(rec.adapt_user(0, &[]).unwrap_err(), ArtifactError::EmptySupport);
        assert_eq!(
            rec.adapt_user(0, &[(42, 1.0)]).unwrap_err(),
            ArtifactError::ItemOutOfRange { item: 42, n_items: 9 }
        );
        assert_eq!(
            rec.adapt_user(0, &[(1, f32::NAN)]).unwrap_err(),
            ArtifactError::NonFiniteLabel { item: 1 }
        );
        let err = rec.recommend_content(&[0.0; 3], 3, None).unwrap_err();
        assert!(matches!(err, ArtifactError::ContentDimMismatch { got: 3, want: 6, .. }));
        assert!(err.to_string().contains("content width 3"));
    }

    #[test]
    fn non_finite_scores_are_a_typed_error_and_rewind_theta() {
        // A CRC-valid artifact whose weights are NaN restores cleanly but
        // scores every item as NaN. That must surface as a typed error,
        // not the NaN panic inside `top_k_indices`.
        let mut poisoned = tiny_artifact(15);
        for (_, m) in poisoned.params.iter_mut() {
            m.as_mut_slice().fill(f32::NAN);
        }
        let mut rec = poisoned.into_recommender().expect("NaN weights still restore");
        assert_eq!(
            rec.recommend(0, 3, None).unwrap_err(),
            ArtifactError::NonFiniteScores { item: 0 }
        );

        // Adapted-parameter scoring hits the same guard, and θ is rewound
        // on the error path: the healthy base model keeps serving after a
        // poisoned adapted set is rejected.
        let mut healthy = tiny_artifact(15).into_recommender().expect("valid artifact");
        let before = healthy.recommend(0, 3, None).expect("healthy scores");
        let bad_params: Vec<Matrix> = healthy
            .theta()
            .iter()
            .map(|m| {
                let mut p = m.clone();
                p.as_mut_slice().fill(f32::NAN);
                p
            })
            .collect();
        assert!(matches!(
            healthy.recommend(0, 3, Some(&bad_params)).unwrap_err(),
            ArtifactError::NonFiniteScores { .. }
        ));
        assert_eq!(healthy.recommend(0, 3, None).unwrap(), before, "θ survives the error path");
    }

    #[test]
    fn corrupted_parameter_tables_are_rejected() {
        let mut artifact = tiny_artifact(14);
        artifact.params[0].0 = "other.p000".into();
        match artifact.into_recommender() {
            Err(ArtifactError::BadParams(msg)) => assert!(msg.contains("named")),
            Err(other) => panic!("expected BadParams, got {other:?}"),
            Ok(_) => panic!("expected BadParams, got a recommender"),
        }

        let mut short = tiny_artifact(14);
        short.params.pop();
        assert!(matches!(short.into_recommender(), Err(ArtifactError::BadParams(_))));

        let mut wrong_dim = tiny_artifact(14);
        wrong_dim.user_content = Matrix::zeros(4, 5);
        assert!(matches!(
            wrong_dim.into_recommender(),
            Err(ArtifactError::ContentDimMismatch { what: "user_content", got: 5, want: 6 })
        ));
    }
}

//! Shared experiment machinery: build a world, fit every method once on
//! the warm tasks, evaluate all four scenarios.

use metadpa_core::eval::{evaluate_scenario_at_ks, Recommender};
use metadpa_data::domain::World;
use metadpa_data::generator::generate_world;
use metadpa_data::presets;
use metadpa_data::splits::{Scenario, ScenarioKind, SplitConfig, Splitter};
use metadpa_metrics::MetricSummary;

/// One method's metrics on one scenario, at each requested cutoff.
#[derive(Clone, Debug)]
pub struct MethodScenarioResult {
    /// Method display name.
    pub method: String,
    /// Scenario kind.
    pub kind: ScenarioKind,
    /// One summary per requested `k`.
    pub at_k: Vec<MetricSummary>,
}

impl MethodScenarioResult {
    /// The summary at the single configured cutoff (for `ks = [10]` runs).
    pub fn summary(&self) -> &MetricSummary {
        &self.at_k[0]
    }
}

/// Generates a preset world by name ("books" / "cds" / "tiny").
///
/// # Panics
/// Panics on an unknown name.
pub fn world_by_name(name: &str, seed: u64) -> World {
    let cfg = match name {
        "books" => presets::books_world(seed),
        "cds" => presets::cds_world(seed),
        "tiny" => presets::tiny_world(seed),
        other => panic!("unknown world preset: {other}"),
    };
    let _span = metadpa_obs::span!("bench.generate_world.{}", name);
    let world = generate_world(&cfg);
    metadpa_obs::event!(
        "bench.world",
        "preset" => name,
        "seed" => seed,
        "sources" => world.n_sources(),
        "target_users" => world.target.n_users(),
        "target_items" => world.target.n_items(),
    );
    world
}

/// Builds the four scenarios for a world's target domain.
pub fn build_scenarios(world: &World, split_seed: u64) -> Vec<Scenario> {
    let splitter =
        Splitter::new(&world.target, SplitConfig { seed: split_seed, ..SplitConfig::default() });
    ScenarioKind::ALL.iter().map(|&k| splitter.scenario(k)).collect()
}

/// Fits one method on the warm training tasks and evaluates it on every
/// scenario at the given cutoffs.
pub fn run_method_on_world(
    rec: &mut dyn Recommender,
    world: &World,
    scenarios: &[Scenario],
    ks: &[usize],
) -> Vec<MethodScenarioResult> {
    // Training tasks are identical across scenarios; fit once on the first.
    let _method_span = metadpa_obs::span!("bench.method.{}", rec.name());
    {
        let _fit_span = metadpa_obs::span!("bench.fit");
        rec.fit(world, &scenarios[0]);
    }
    scenarios
        .iter()
        .map(|s| {
            let _eval_span = metadpa_obs::span!("bench.eval.{:?}", s.kind);
            MethodScenarioResult {
                method: rec.name(),
                kind: s.kind,
                at_k: evaluate_scenario_at_ks(rec, world, s, ks),
            }
        })
        .collect()
}

/// Runs an entire roster over a world; returns results per method, per
/// scenario. Emits an obs progress event per method.
pub fn run_roster_on_world(
    roster: &mut [Box<dyn Recommender>],
    world: &World,
    scenarios: &[Scenario],
    ks: &[usize],
) -> Vec<Vec<MethodScenarioResult>> {
    roster
        .iter_mut()
        .map(|rec| {
            let started = std::time::Instant::now();
            let out = run_method_on_world(rec.as_mut(), world, scenarios, ks);
            metadpa_obs::event!(
                "harness.method_done",
                "method" => rec.name(),
                "scenarios" => scenarios.len(),
                "elapsed_ms" => started.elapsed().as_secs_f64() * 1e3,
            );
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_baselines::full_roster;

    #[test]
    fn tiny_roster_smoke_run_produces_full_grid() {
        let world = world_by_name("tiny", 3);
        let scenarios = build_scenarios(&world, 3);
        let mut roster = full_roster(3, true);
        assert_eq!(roster.len(), 8, "seven baselines + MetaDPA");
        let results = run_roster_on_world(&mut roster, &world, &scenarios, &[10]);
        assert_eq!(results.len(), 8);
        for per_method in &results {
            assert_eq!(per_method.len(), 4, "four scenarios");
            for r in per_method {
                assert!(r.summary().count > 0, "{}/{:?}", r.method, r.kind);
                assert!(r.summary().auc.is_finite());
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown world preset")]
    fn unknown_world_panics() {
        let _ = world_by_name("nope", 1);
    }
}

//! Aligned text-table rendering for experiment output.
//!
//! The binaries print paper-style tables to stdout; this module keeps the
//! formatting in one place (fixed-width columns, a rule under the header,
//! and `best`/`second-best` markers like the paper's bold and °).

/// A simple text table builder.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "TextTable::row: expected {} cells, got {}",
            self.header.len(),
            cells.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a metric value with the paper's convention: best marked with
/// `*`, second best with `°`.
pub fn mark_value(value: f32, best: f32, second: f32) -> String {
    if value == best {
        format!("{value:.4}*")
    } else if value == second {
        format!("{value:.4}°")
    } else {
        format!("{value:.4}")
    }
}

/// Returns `(best, second_best)` of a slice (by value, descending).
/// Returns `(max, max)` for slices of length 1.
///
/// # Panics
/// Panics on an empty slice.
pub fn best_two(values: &[f32]) -> (f32, f32) {
    assert!(!values.is_empty(), "best_two: empty slice");
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("metric values must not be NaN"));
    (sorted[0], if sorted.len() > 1 { sorted[1] } else { sorted[0] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["method", "hr"]);
        t.row(vec!["NeuMF".into(), "0.1".into()]);
        t.row(vec!["MetaDPA".into(), "0.25".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "hr" starts at the same offset everywhere.
        let offset = lines[0].find("hr").unwrap();
        assert_eq!(&lines[2][offset..offset + 3], "0.1");
    }

    #[test]
    #[should_panic(expected = "expected 2 cells")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn best_two_and_marking() {
        let vals = [0.1, 0.5, 0.3];
        let (best, second) = best_two(&vals);
        assert_eq!(best, 0.5);
        assert_eq!(second, 0.3);
        assert_eq!(mark_value(0.5, best, second), "0.5000*");
        assert_eq!(mark_value(0.3, best, second), "0.3000°");
        assert_eq!(mark_value(0.1, best, second), "0.1000");
    }

    #[test]
    fn best_two_single_value() {
        assert_eq!(best_two(&[0.7]), (0.7, 0.7));
    }
}

//! # metadpa-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation section, plus Criterion microbenchmarks.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `exp_tables_1_2` | Tables I-II (dataset statistics) |
//! | `exp_table3` | Table III (overall comparison, 8 methods x 4 scenarios x 2 targets) |
//! | `exp_figs_3_4` | Figs. 3-4 (NDCG@k curves on Books and CDs) |
//! | `exp_fig5_ablation` | Fig. 5 (MetaDPA vs -ME vs -MDI on CDs) |
//! | `exp_fig6_scalability` | Fig. 6 (per-block training time vs data size) |
//! | `exp_figs_7_8_hyperparams` | Figs. 7-8 (β₁/β₂ sensitivity on CDs) |
//! | `exp_significance` | §V-D (Wilcoxon signed-rank over 30 splits) |
//!
//! Every binary accepts `--fast` (reduced schedules and a smaller world,
//! for smoke runs) and `--seed <n>`. Run with `--release`; the default
//! schedules are sized for optimized builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod harness;
pub mod table;

pub use args::ExpArgs;
pub use harness::{run_roster_on_world, MethodScenarioResult};

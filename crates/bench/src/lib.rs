//! # metadpa-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation section, plus hand-rolled microbenchmarks.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `exp_tables_1_2` | Tables I-II (dataset statistics) |
//! | `exp_table3` | Table III (overall comparison, 8 methods x 4 scenarios x 2 targets) |
//! | `exp_figs_3_4` | Figs. 3-4 (NDCG@k curves on Books and CDs) |
//! | `exp_fig5_ablation` | Fig. 5 (MetaDPA vs -ME vs -MDI on CDs) |
//! | `exp_fig6_scalability` | Fig. 6 (per-block training time vs data size) |
//! | `exp_figs_7_8_hyperparams` | Figs. 7-8 (β₁/β₂ sensitivity on CDs) |
//! | `exp_significance` | §V-D (Wilcoxon signed-rank over 30 splits) |
//!
//! Every binary accepts `--fast` (reduced schedules and a smaller world,
//! for smoke runs) and `--seed <n>`. Run with `--release`; the default
//! schedules are sized for optimized builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod baseline;
pub mod harness;
pub mod microbench;
pub mod table;

pub use args::ExpArgs;
pub use harness::{run_roster_on_world, MethodScenarioResult};

use std::sync::Arc;

/// Every binary in this crate (experiments, `obs-report`, the hand-rolled
/// bench targets) allocates through the counting wrapper so `--obs-alloc`
/// can attribute allocation churn to spans. Until
/// [`metadpa_obs::alloc::enable_profiling`] runs, each allocator call adds
/// exactly one relaxed atomic load over plain `System`.
#[global_allocator]
static GLOBAL_ALLOC: metadpa_obs::alloc::CountingAlloc = metadpa_obs::alloc::CountingAlloc::new();

/// Installs the observability backend for an experiment binary and emits
/// the run manifest. Returns an [`metadpa_obs::ObsSession`] guard; keep it
/// alive for the whole run — dropping it prints the span/metric summary to
/// stderr and flushes any file sink.
///
/// Backend selection: `--no-obs` disables everything; `--obs-out <path>`
/// tees a JSONL event stream into `path` alongside the stderr progress
/// lines; the default is stderr progress lines only.
///
/// # Panics
/// Panics if `--obs-out` points at an uncreatable path.
pub fn obs_init(binary: &str, args: &ExpArgs) -> metadpa_obs::ObsSession {
    if args.obs_alloc {
        metadpa_obs::alloc::enable_profiling();
    }
    if args.no_obs {
        metadpa_obs::disable();
        return metadpa_obs::ObsSession::new(false);
    }
    let stderr: Arc<dyn metadpa_obs::Recorder> = Arc::new(metadpa_obs::StderrRecorder::default());
    let recorder: Arc<dyn metadpa_obs::Recorder> = match &args.obs_out {
        Some(path) => {
            let file = metadpa_obs::FileRecorder::create(path)
                .unwrap_or_else(|e| panic!("--obs-out {path}: {e}"));
            Arc::new(metadpa_obs::TeeRecorder::new(vec![stderr, Arc::new(file)]))
        }
        None => stderr,
    };
    metadpa_obs::enable(recorder);
    let mut manifest = metadpa_obs::Event::new("manifest", "run");
    manifest.push("binary", binary);
    manifest.push("seed", args.seed);
    manifest.push("fast", args.fast);
    manifest.push("splits", args.splits);
    manifest.push("obs_alloc", args.obs_alloc);
    metadpa_obs::emit(manifest);
    metadpa_obs::ObsSession::new(true)
}

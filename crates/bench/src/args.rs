//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Hand-rolled on purpose: the sanctioned dependency set has no argument
//! parser, and the experiments only need three flags.

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Reduced schedules and a smaller world (smoke mode).
    pub fast: bool,
    /// Master seed.
    pub seed: u64,
    /// Split count for the significance experiment (paper: 30).
    pub splits: usize,
    /// Write the observability event stream (JSONL) to this path.
    pub obs_out: Option<String>,
    /// Disable observability entirely (progress lines included).
    pub no_obs: bool,
    /// Enable allocation profiling (per-span alloc counts/bytes).
    pub obs_alloc: bool,
    /// Write a BENCH perf-baseline JSON (see DESIGN.md §6) to this path.
    pub bench_out: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            fast: false,
            seed: 2022,
            splits: 30,
            obs_out: None,
            no_obs: false,
            obs_alloc: false,
            bench_out: None,
        }
    }
}

impl ExpArgs {
    /// Parses `--fast`, `--seed <n>`, `--splits <n>`, `--obs-out <path>`,
    /// `--no-obs`, `--obs-alloc` and `--bench-out <path>` from an iterator
    /// of arguments (typically `std::env::args().skip(1)`).
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or malformed values —
    /// appropriate for experiment binaries, where a typo should not
    /// silently run the wrong configuration.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--fast" => out.fast = true,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| panic!("--seed needs a value"));
                    out.seed = v.parse().unwrap_or_else(|_| panic!("invalid --seed: {v}"));
                }
                "--splits" => {
                    let v = it.next().unwrap_or_else(|| panic!("--splits needs a value"));
                    out.splits = v.parse().unwrap_or_else(|_| panic!("invalid --splits: {v}"));
                }
                "--obs-out" => {
                    let v = it.next().unwrap_or_else(|| panic!("--obs-out needs a value"));
                    out.obs_out = Some(v);
                }
                "--no-obs" => out.no_obs = true,
                "--obs-alloc" => out.obs_alloc = true,
                "--bench-out" => {
                    let v = it.next().unwrap_or_else(|| panic!("--bench-out needs a value"));
                    out.bench_out = Some(v);
                }
                other => panic!(
                    "unknown flag {other}; supported: --fast, --seed <n>, --splits <n>, \
                     --obs-out <path>, --no-obs, --obs-alloc, --bench-out <path>"
                ),
            }
        }
        out
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> ExpArgs {
        ExpArgs::parse(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(!a.fast);
        assert_eq!(a.seed, 2022);
        assert_eq!(a.splits, 30);
        assert!(a.obs_out.is_none());
        assert!(!a.no_obs);
        assert!(!a.obs_alloc);
        assert!(a.bench_out.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--fast",
            "--seed",
            "7",
            "--splits",
            "5",
            "--obs-out",
            "x.jsonl",
            "--no-obs",
            "--obs-alloc",
            "--bench-out",
            "BENCH_x.json",
        ]);
        assert!(a.fast);
        assert_eq!(a.seed, 7);
        assert_eq!(a.splits, 5);
        assert_eq!(a.obs_out.as_deref(), Some("x.jsonl"));
        assert!(a.no_obs);
        assert!(a.obs_alloc);
        assert_eq!(a.bench_out.as_deref(), Some("BENCH_x.json"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "invalid --seed")]
    fn rejects_bad_seed() {
        let _ = parse(&["--seed", "xyz"]);
    }
}

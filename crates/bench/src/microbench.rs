//! Minimal microbenchmark runner backing the `cargo bench` targets.
//!
//! Hand-rolled on purpose: the offline dependency set has no criterion, so
//! each `[[bench]]` target is a plain `harness = false` binary that times a
//! closure with `Instant` and feeds per-iteration latencies into a
//! [`metadpa_obs`] histogram — the same machinery the training pipeline
//! uses, so the quantile logic is exercised by the benches themselves.

use std::time::Instant;

use metadpa_obs::metrics;

/// Timing statistics for one benchmark case (all values in nanoseconds).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Case name (also the obs histogram name).
    pub name: String,
    /// Measured iterations (excludes warm-up).
    pub iters: u64,
    /// Mean per-iteration latency.
    pub mean_ns: f64,
    /// Median per-iteration latency.
    pub p50_ns: u64,
    /// 90th-percentile per-iteration latency.
    pub p90_ns: u64,
    /// 99th-percentile per-iteration latency.
    pub p99_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
    /// FLOPs per iteration, from the `tensor.matmul.flops` counter delta
    /// over the measured loop (0 when observability is disabled).
    pub flops_per_iter: u64,
    /// Allocations per iteration (0 unless allocation profiling is on).
    pub alloc_count_per_iter: u64,
    /// Allocated bytes per iteration.
    pub alloc_bytes_per_iter: u64,
}

impl BenchResult {
    /// One aligned human-readable report line.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{:<44} {:>4} iters  mean {:>12}  p50 {:>12}  p99 {:>12}  min {:>12}  max {:>12}",
            self.name,
            self.iters,
            fmt_ns(self.mean_ns),
            fmt_ns(self.p50_ns as f64),
            fmt_ns(self.p99_ns as f64),
            fmt_ns(self.min_ns as f64),
            fmt_ns(self.max_ns as f64),
        );
        if self.alloc_count_per_iter > 0 {
            line.push_str(&format!(
                "  allocs/iter {} ({} B)",
                self.alloc_count_per_iter, self.alloc_bytes_per_iter
            ));
        }
        line
    }

    /// The BENCH-schema block this case contributes to `--bench-out`.
    pub fn to_bench_block(&self) -> metadpa_obs::report::BenchBlock {
        metadpa_obs::report::BenchBlock {
            name: self.name.clone(),
            iters: self.iters,
            p50_ns: self.p50_ns,
            p90_ns: self.p90_ns,
            mean_ns: self.mean_ns,
            flops: self.flops_per_iter,
            alloc_count: self.alloc_count_per_iter,
            alloc_bytes: self.alloc_bytes_per_iter,
            server_p99_ns: 0,
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times `iters` runs of `f` (after `iters / 10 + 1` warm-up runs),
/// records each latency into the obs histogram `name`, and prints a report
/// line to stdout.
pub fn run(name: &str, iters: u64, mut f: impl FnMut()) -> BenchResult {
    assert!(iters > 0, "microbench::run needs at least one iteration");
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let flops = metrics::counter("tensor.matmul.flops");
    let flops0 = flops.get();
    let alloc0 = metadpa_obs::alloc::snapshot();
    let hist = metrics::histogram(name);
    for _ in 0..iters {
        let started = Instant::now();
        f();
        hist.observe(started.elapsed().as_nanos() as u64);
    }
    let alloc1 = metadpa_obs::alloc::snapshot();
    let result = BenchResult {
        name: name.to_string(),
        iters: hist.count(),
        mean_ns: hist.mean(),
        p50_ns: hist.quantile(0.5),
        p90_ns: hist.quantile(0.9),
        p99_ns: hist.quantile(0.99),
        min_ns: hist.min(),
        max_ns: hist.max(),
        flops_per_iter: flops.get().saturating_sub(flops0) / iters,
        alloc_count_per_iter: alloc1.alloc_count.saturating_sub(alloc0.alloc_count) / iters,
        alloc_bytes_per_iter: alloc1.alloc_bytes.saturating_sub(alloc0.alloc_bytes) / iters,
    };
    println!("{}", result.render());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_measures_and_reports() {
        let _guard = metadpa_obs::test_lock();
        metrics::reset();
        let mut calls = 0u64;
        let r = run("microbench.test.spin", 8, || {
            calls += 1;
            std::hint::black_box((0..100).sum::<u64>());
        });
        // 8 measured + ceil-ish warm-up (8/10 + 1 = 1).
        assert_eq!(calls, 9);
        assert_eq!(r.iters, 8);
        assert!(r.min_ns <= r.p50_ns && r.p50_ns <= r.max_ns);
        assert!(r.p50_ns <= r.p90_ns && r.p90_ns <= r.p99_ns);
        assert!(r.mean_ns > 0.0);
    }

    fn sample_result() -> BenchResult {
        BenchResult {
            name: "x".into(),
            iters: 3,
            mean_ns: 1500.0,
            p50_ns: 1400,
            p90_ns: 1800,
            p99_ns: 2000,
            min_ns: 1000,
            max_ns: 2100,
            flops_per_iter: 640,
            alloc_count_per_iter: 2,
            alloc_bytes_per_iter: 96,
        }
    }

    #[test]
    fn render_is_single_line() {
        let line = sample_result().render();
        assert!(!line.contains('\n'));
        assert!(line.contains("µs"));
        assert!(line.contains("allocs/iter 2"));
    }

    #[test]
    fn bench_block_conversion_carries_all_counters() {
        let b = sample_result().to_bench_block();
        assert_eq!(b.name, "x");
        assert_eq!(b.p50_ns, 1400);
        assert_eq!(b.p90_ns, 1800);
        assert_eq!(b.flops, 640);
        assert_eq!(b.alloc_bytes, 96);
    }
}

//! Writing BENCH perf baselines (`--bench-out BENCH_<name>.json`).
//!
//! A BENCH file is the stable, machine-readable summary of one measured
//! run: git revision, scenario name, hardware fingerprint, and per-block
//! p50/p90 wall time plus FLOP and allocation counters (schema:
//! [`metadpa_obs::report::BENCH_SCHEMA`], documented in DESIGN.md §6).
//! `obs-report check` compares two of these and exits nonzero on
//! regression — the CI perf gate.

use std::io::Write;

use metadpa_obs::report::{BenchBlock, BenchReport, HostInfo};

/// The current git revision (short hash, `-dirty` suffixed when the tree
/// has local modifications), or `"unknown"` outside a git checkout.
/// Delegates to [`metadpa_obs::report::git_rev`], which is shared with the
/// serve artifact exporter.
pub fn git_rev() -> String {
    metadpa_obs::report::git_rev()
}

/// Assembles a [`BenchReport`] for this machine and revision, stamped
/// with the current run-ledger key when the recording process has one
/// installed (`""` otherwise — e.g. a pure-client loadgen run).
pub fn bench_report(scenario: &str, blocks: Vec<BenchBlock>) -> BenchReport {
    BenchReport {
        git_rev: git_rev(),
        scenario: scenario.to_string(),
        host: HostInfo::current(),
        requests: 0,
        run_id: metadpa_obs::run::current_string(),
        blocks,
    }
}

/// Writes the report as BENCH JSON to `path`.
pub fn write_bench_report(
    path: &str,
    scenario: &str,
    blocks: Vec<BenchBlock>,
) -> std::io::Result<()> {
    let report = bench_report(scenario, blocks);
    let mut f = std::fs::File::create(path)?;
    f.write_all(report.to_json().as_bytes())?;
    eprintln!("wrote {} block(s) to {path}", report.blocks.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_stamps_rev_and_host_and_round_trips() {
        let blocks = vec![BenchBlock {
            name: "unit.case".into(),
            iters: 5,
            p50_ns: 100,
            p90_ns: 120,
            mean_ns: 105.0,
            flops: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            server_p99_ns: 0,
        }];
        let report = bench_report("unit.scenario", blocks);
        assert!(!report.git_rev.is_empty());
        assert_eq!(report.host, HostInfo::current());
        let parsed = BenchReport::from_json(&report.to_json()).expect("schema round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn write_creates_a_parseable_file() {
        let path = std::env::temp_dir()
            .join(format!("BENCH_test_{}.json", std::process::id()))
            .to_string_lossy()
            .to_string();
        write_bench_report(&path, "unit.write", Vec::new()).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(BenchReport::from_json(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}

//! Tables I-II: dataset statistics of the multi-domain worlds.
//!
//! Paper reference: Table I reports, per source domain, the users shared
//! with each target plus item/rating counts and sparsity; Table II reports
//! the targets' statistics. This binary prints the same rows for the
//! SynthAmazon presets (absolute counts are laptop-scale by design; the
//! *orderings* — Movies sharing the most users, Music the fewest with
//! Books, Books being the largest and sparsest target — follow the paper).

use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::world_by_name;
use metadpa_bench::table::TextTable;
use metadpa_data::stats::{domain_stats, source_stats};

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_tables_1_2", &args);
    println!("== Tables I-II: SynthAmazon dataset statistics (seed {}) ==\n", args.seed);

    let books = world_by_name(if args.fast { "tiny" } else { "books" }, args.seed);
    let cds = world_by_name(if args.fast { "tiny" } else { "cds" }, args.seed);

    // Table I: source domains, shared users with each target.
    let mut t1 = TextTable::new(&[
        "Source (S)",
        "#shared (Books)",
        "#shared (CDs)",
        "#users",
        "#items",
        "#ratings",
        "sparsity",
    ]);
    let books_sources = source_stats(&books);
    let cds_sources = source_stats(&cds);
    for (bs, cs) in books_sources.iter().zip(cds_sources.iter()) {
        t1.row(vec![
            bs.stats.name.clone(),
            bs.shared_with_target.to_string(),
            cs.shared_with_target.to_string(),
            bs.stats.n_users.to_string(),
            bs.stats.n_items.to_string(),
            bs.stats.n_ratings.to_string(),
            format!("{:.2}%", bs.stats.sparsity * 100.0),
        ]);
    }
    println!("Table I — source domains:\n{}", t1.render());

    // Table II: target domains.
    let mut t2 = TextTable::new(&["Dataset", "#users", "#items", "#ratings", "sparsity"]);
    for world in [&books, &cds] {
        let s = domain_stats(&world.target);
        t2.row(vec![
            s.name,
            s.n_users.to_string(),
            s.n_items.to_string(),
            s.n_ratings.to_string(),
            format!("{:.2}%", s.sparsity * 100.0),
        ]);
    }
    println!("Table II — target domains:\n{}", t2.render());

    println!(
        "Paper shapes to check: Movies shares the most users with Books, Music the fewest;\n\
         Books is the larger target; every domain is >90% sparse at this scale\n\
         (the paper's 99.97-99.99% corresponds to catalogues 1000x larger)."
    );
}

//! `obs-report`: offline analysis of recorded observability streams and
//! the BENCH perf-baseline regression gate.
//!
//! ```text
//! obs-report report <run.jsonl> [--json]     flamegraph + metrics table
//! obs-report diff <a.jsonl> <b.jsonl>        per-span / per-metric deltas
//! obs-report check <current.json> --baseline <BENCH.json>
//!            [--tolerance 0.15] [--warn-only]
//! ```
//!
//! `report` renders the span tree as a text flamegraph (inclusive and
//! exclusive time per path, hot paths by self time), the metrics table
//! reconstructed from the stream's `metric` records, and — with `--json`
//! — a machine-readable summary instead.
//!
//! `check` compares per-block p50 wall time against a committed baseline
//! and exits `1` when any block regressed beyond the tolerance. Because a
//! timing baseline only binds on the hardware that recorded it, a host
//! fingerprint mismatch downgrades failures to warnings unless the
//! `METADPA_BENCH_STRICT` environment variable is set (non-empty, not
//! `"0"`); `--warn-only` downgrades unconditionally.

use std::io::Write;

use metadpa_obs::diff::{check, StreamDiff};
use metadpa_obs::report::{BenchReport, Report};
use metadpa_obs::stream::read_file;

const USAGE: &str = "usage:
  obs-report report <run.jsonl> [--json]
  obs-report diff <a.jsonl> <b.jsonl>
  obs-report check <current.json> --baseline <BENCH.json> [--tolerance 0.15] [--warn-only]";

fn fail(msg: &str) -> ! {
    eprintln!("obs-report: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Writes to stdout, exiting quietly when the downstream pipe has closed
/// (`obs-report report run.jsonl | head` must not panic).
fn out(text: impl AsRef<str>) {
    if std::io::stdout().write_all(text.as_ref().as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn load_report(path: &str) -> Report {
    match read_file(path) {
        Ok(events) => Report::from_events(&events),
        Err(e) => fail(&e),
    }
}

fn load_bench(path: &str) -> BenchReport {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("{path}: {e}")),
    };
    match BenchReport::from_json(&text) {
        Ok(r) => r,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn cmd_report(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else { fail("report takes exactly one stream path") };
    let report = load_report(path);
    if json {
        out(format!("{}\n", report.to_json()));
        return;
    }
    out(format!("== obs-report: {path} ==\n"));
    for (kind, n) in &report.record_counts {
        out(format!("  {n} {kind} record(s)\n"));
    }
    if !report.manifest.is_empty() {
        let fields: Vec<String> =
            report.manifest.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
        out(format!("  manifest: {}\n", fields.join(" ")));
    }
    out("\n");
    out(report.render_flamegraph());
    out("\n");
    out(report.render_metrics());
}

fn cmd_diff(args: &[String]) {
    let [a, b] = args else { fail("diff takes exactly two stream paths") };
    let ra = load_report(a);
    let rb = load_report(b);
    out(format!("== obs-report diff: {a} -> {b} ==\n"));
    out(StreamDiff::between(&ra, &rb).render());
}

fn strict_env() -> bool {
    std::env::var("METADPA_BENCH_STRICT").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

fn cmd_check(args: &[String]) {
    let mut current = None;
    let mut baseline = None;
    let mut tolerance = 0.15f64;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(it.next().unwrap_or_else(|| fail("--baseline needs a value")));
            }
            "--tolerance" => {
                let v = it.next().unwrap_or_else(|| fail("--tolerance needs a value"));
                tolerance = v.parse().unwrap_or_else(|_| fail(&format!("bad --tolerance {v}")));
            }
            "--warn-only" => warn_only = true,
            other if !other.starts_with("--") && current.is_none() => {
                current = Some(other.to_string());
            }
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let current = current.unwrap_or_else(|| fail("check needs a current BENCH json"));
    let baseline = baseline.unwrap_or_else(|| fail("check needs --baseline <BENCH.json>"));
    let cur = load_bench(&current);
    let base = load_bench(baseline);
    let gate = check(&cur, &base, tolerance);
    out(format!(
        "== obs-report check: {current} (rev {}) vs baseline {baseline} (rev {}) ==\n",
        cur.git_rev, base.git_rev
    ));
    out(gate.render(tolerance));
    if gate.regressions == 0 {
        return;
    }
    if warn_only {
        out(format!("warn-only: {} regression(s) NOT gating (--warn-only)\n", gate.regressions));
        return;
    }
    if !gate.hardware_match && !strict_env() {
        out(format!(
            "warn-only: baseline hardware differs ({:?} vs {:?}); {} regression(s) NOT gating \
             (set METADPA_BENCH_STRICT=1 to fail anyway)\n",
            base.host, cur.host, gate.regressions
        ));
        return;
    }
    eprintln!("obs-report: {} perf regression(s) beyond tolerance", gate.regressions);
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "report" => cmd_report(rest),
            "diff" => cmd_diff(rest),
            "check" => cmd_check(rest),
            other => fail(&format!("unknown subcommand {other}")),
        },
        None => fail("missing subcommand"),
    }
}

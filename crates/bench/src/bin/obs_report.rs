//! `obs-report`: offline analysis of recorded observability streams and
//! the BENCH perf-baseline regression gate.
//!
//! ```text
//! obs-report report <run.jsonl> [--json]     flamegraph + metrics table
//! obs-report diff <a.jsonl> <b.jsonl>        per-span / per-metric deltas
//! obs-report check <current.json> --baseline <BENCH.json>
//!            [--tolerance 0.15] [--warn-only]
//! obs-report tail <trace.jsonl> [--interval-ms 2000] [--max-seconds S] [--once]
//! obs-report check-trace <trace.jsonl> [--expect-requests N] [--expect-bench BENCH.json]
//! obs-report train-tail <trace.jsonl> [--interval-ms 2000] [--max-seconds S] [--once]
//! obs-report check-train <trace.jsonl> [--min-improvement X] [--expect-epochs N]
//! obs-report check-feedback <feedback.jsonl> [--threshold N] [--trace trace.jsonl]
//! obs-report lineage <trace.jsonl> [--ckpt artifact.ckpt] [--health health.json]
//!            [--feedback feedback.jsonl]
//! ```
//!
//! `report` renders the span tree as a text flamegraph (inclusive and
//! exclusive time per path, hot paths by self time), the metrics table
//! reconstructed from the stream's `metric` records, and — with `--json`
//! — a machine-readable summary instead.
//!
//! `check` compares per-block p50 wall time against a committed baseline
//! and exits `1` when any block regressed beyond the tolerance. Because a
//! timing baseline only binds on the hardware that recorded it, a host
//! fingerprint mismatch downgrades failures to warnings unless the
//! `METADPA_BENCH_STRICT` environment variable is set (non-empty, not
//! `"0"`); `--warn-only` downgrades unconditionally.
//!
//! `tail` follows a live serve trace log (the `--trace-out` file of
//! `metadpa-serve run` / `serve-loadgen`), re-rendering a rolling summary
//! every interval: per-endpoint/per-state latency percentiles over the
//! most recent requests plus the hottest span paths by total time. It
//! survives log rotation and skips partially written lines. `--once`
//! renders a single snapshot of what is on disk and exits.
//!
//! `check-trace` stream-parses a finished trace log (rotated generation
//! included) with the crash-lenient reader and exits `1` unless: there
//! are zero interior parse errors (a truncated final line is a warning,
//! not an error), every request record carries a unique nonzero request
//! id, the request count matches `--expect-requests` (or, with
//! `--expect-bench`, the recommend-endpoint count matches the BENCH
//! file's `requests`), and the closing metrics snapshot carries windowed
//! p99 records.
//!
//! `train-tail` is `tail` for *training* traces (the `--train-trace-out`
//! file of `metadpa-serve export` or any pipeline run): it follows the
//! rotated log live and re-renders a per-phase table — latest epoch, loss
//! and grad-norm sparklines over the recent window, the rolling-rate ETA
//! the trainer stamped into each record — plus the run-ledger ID and any
//! sentinel anomaly events.
//!
//! `check-train` is the CI gate over a finished training trace: zero hard
//! parse errors AND zero truncated tails (a training run ends cleanly, so
//! a torn last line means the run died), at least one `train_epoch`
//! record, exactly one run-ledger ID stamped on every training record,
//! per-(phase, source) epoch sequences that count 0,1,2,… with no gap or
//! duplicate, zero `train_anomaly` events, and a loss-improvement floor
//! (first loss minus best loss per group must reach `--min-improvement`,
//! default 0). `--expect-epochs N` additionally pins the total
//! `train_epoch` record count.
//!
//! `check-feedback` is the CI gate over a finished feedback event log
//! (the `--feedback-log` file of `metadpa-serve run` / `serve-loadgen`):
//! zero interior parse errors, at least one event, exactly one run-ledger
//! ID stamped on every record, and a strictly contiguous sequence across
//! both generations. It then replays the log through the graduation state
//! machine (`--threshold`, default 5) to compute the expected
//! graduation/refresh counts; with `--trace` it demands the live
//! adapter's `feedback.graduation` events match that oracle exactly, and
//! cross-checks the trace's `serve.artifact` run ID against the log's.
//!
//! `lineage` reconstructs the train → export → serve chain: the trace's
//! stamped run ID, the checkpoint's `meta.run_id` (via `--ckpt`), a
//! saved `/health` body (via `--health`), and a feedback event log (via
//! `--feedback`) must all join on one run-ledger key. Prints the
//! provenance report and exits `1` when any source is unstamped or
//! disagrees.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Seek, SeekFrom, Write};
use std::time::{Duration, Instant};

use metadpa_obs::diff::{check, StreamDiff};
use metadpa_obs::lineage::{run_id_from_health_json, Lineage};
use metadpa_obs::report::{BenchReport, Report};
use metadpa_obs::stream::{parse_line, read_file, read_file_lenient, JsonValue, StreamEvent};

const USAGE: &str = "usage:
  obs-report report <run.jsonl> [--json]
  obs-report diff <a.jsonl> <b.jsonl>
  obs-report check <current.json> --baseline <BENCH.json> [--tolerance 0.15] [--warn-only]
  obs-report tail <trace.jsonl> [--interval-ms 2000] [--max-seconds S] [--once]
  obs-report check-trace <trace.jsonl> [--expect-requests N] [--expect-bench BENCH.json]
  obs-report train-tail <trace.jsonl> [--interval-ms 2000] [--max-seconds S] [--once]
  obs-report check-train <trace.jsonl> [--min-improvement X] [--expect-epochs N]
  obs-report check-feedback <feedback.jsonl> [--threshold N] [--trace trace.jsonl]
  obs-report lineage <trace.jsonl> [--ckpt artifact.ckpt] [--health health.json] [--feedback feedback.jsonl]";

fn fail(msg: &str) -> ! {
    eprintln!("obs-report: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Writes to stdout, exiting quietly when the downstream pipe has closed
/// (`obs-report report run.jsonl | head` must not panic).
fn out(text: impl AsRef<str>) {
    if std::io::stdout().write_all(text.as_ref().as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn load_report(path: &str) -> Report {
    match read_file(path) {
        Ok(events) => Report::from_events(&events),
        Err(e) => fail(&e),
    }
}

fn load_bench(path: &str) -> BenchReport {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("{path}: {e}")),
    };
    match BenchReport::from_json(&text) {
        Ok(r) => r,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn cmd_report(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else { fail("report takes exactly one stream path") };
    let report = load_report(path);
    if json {
        out(format!("{}\n", report.to_json()));
        return;
    }
    out(format!("== obs-report: {path} ==\n"));
    for (kind, n) in &report.record_counts {
        out(format!("  {n} {kind} record(s)\n"));
    }
    if !report.manifest.is_empty() {
        let fields: Vec<String> =
            report.manifest.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
        out(format!("  manifest: {}\n", fields.join(" ")));
    }
    out("\n");
    out(report.render_flamegraph());
    out("\n");
    out(report.render_metrics());
}

fn cmd_diff(args: &[String]) {
    let [a, b] = args else { fail("diff takes exactly two stream paths") };
    let ra = load_report(a);
    let rb = load_report(b);
    out(format!("== obs-report diff: {a} -> {b} ==\n"));
    out(StreamDiff::between(&ra, &rb).render());
}

fn strict_env() -> bool {
    std::env::var("METADPA_BENCH_STRICT").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

fn cmd_check(args: &[String]) {
    let mut current = None;
    let mut baseline = None;
    let mut tolerance = 0.15f64;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(it.next().unwrap_or_else(|| fail("--baseline needs a value")));
            }
            "--tolerance" => {
                let v = it.next().unwrap_or_else(|| fail("--tolerance needs a value"));
                tolerance = v.parse().unwrap_or_else(|_| fail(&format!("bad --tolerance {v}")));
            }
            "--warn-only" => warn_only = true,
            other if !other.starts_with("--") && current.is_none() => {
                current = Some(other.to_string());
            }
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let current = current.unwrap_or_else(|| fail("check needs a current BENCH json"));
    let baseline = baseline.unwrap_or_else(|| fail("check needs --baseline <BENCH.json>"));
    let cur = load_bench(&current);
    let base = load_bench(baseline);
    let gate = check(&cur, &base, tolerance);
    out(format!(
        "== obs-report check: {current} (rev {}) vs baseline {baseline} (rev {}) ==\n",
        cur.git_rev, base.git_rev
    ));
    out(gate.render(tolerance));
    if gate.regressions == 0 {
        return;
    }
    if warn_only {
        out(format!("warn-only: {} regression(s) NOT gating (--warn-only)\n", gate.regressions));
        return;
    }
    if !gate.hardware_match && !strict_env() {
        out(format!(
            "warn-only: baseline hardware differs ({:?} vs {:?}); {} regression(s) NOT gating \
             (set METADPA_BENCH_STRICT=1 to fail anyway)\n",
            base.host, cur.host, gate.regressions
        ));
        return;
    }
    eprintln!("obs-report: {} perf regression(s) beyond tolerance", gate.regressions);
    std::process::exit(1);
}

/// How many recent per-key request durations the tail keeps: the rolling
/// window the percentiles are computed over.
const TAIL_WINDOW: usize = 4096;

/// Rolling aggregates for `obs-report tail`.
#[derive(Default)]
struct TailState {
    parse_errors: u64,
    requests: u64,
    error_responses: u64,
    /// `endpoint/state` → most recent request durations (µs).
    recent_us: BTreeMap<String, VecDeque<u64>>,
    /// Span path → (count, total ns), cumulative over the whole log.
    spans: BTreeMap<String, (u64, u64)>,
    rotations: u64,
}

impl TailState {
    fn ingest(&mut self, line: &str) {
        let Ok(ev) = parse_line(line) else {
            self.parse_errors += 1;
            return;
        };
        match ev.kind.as_str() {
            "request" => {
                self.requests += 1;
                if ev.field_u64("status").unwrap_or(0) >= 400 {
                    self.error_responses += 1;
                }
                let state = ev.field("state").and_then(JsonValue::as_str).unwrap_or("");
                let key =
                    if state.is_empty() { ev.name.clone() } else { format!("{}/{state}", ev.name) };
                let ring = self.recent_us.entry(key).or_default();
                if ring.len() == TAIL_WINDOW {
                    ring.pop_front();
                }
                ring.push_back(ev.field_u64("dur_us").unwrap_or(0));
            }
            "span" => {
                let slot = self.spans.entry(ev.name).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += ev
                    .fields
                    .iter()
                    .find(|(k, _)| k == "dur_ns")
                    .map_or(0, |(_, v)| v.as_u64().unwrap_or(0));
            }
            _ => {}
        }
    }

    fn render(&self, path: &str, elapsed: Duration) -> String {
        let mut s = format!(
            "== obs-report tail: {path} (t+{:.1}s) ==\n  requests: {} total, {} error responses",
            elapsed.as_secs_f64(),
            self.requests,
            self.error_responses,
        );
        if self.parse_errors > 0 {
            s.push_str(&format!(", {} unparsable line(s) skipped", self.parse_errors));
        }
        if self.rotations > 0 {
            s.push_str(&format!(", {} rotation(s)", self.rotations));
        }
        s.push('\n');
        for (key, ring) in &self.recent_us {
            let mut sorted: Vec<u64> = ring.iter().copied().collect();
            sorted.sort_unstable();
            let q = |p: f64| -> u64 {
                if sorted.is_empty() {
                    return 0;
                }
                let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            };
            s.push_str(&format!(
                "    {key}: n={} p50={}us p90={}us p99={}us (last {} requests)\n",
                ring.len(),
                q(0.5),
                q(0.9),
                q(0.99),
                ring.len(),
            ));
        }
        if !self.spans.is_empty() {
            let mut by_total: Vec<(&String, &(u64, u64))> = self.spans.iter().collect();
            by_total.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
            s.push_str("  hottest span paths by total time:\n");
            for (path, (count, total_ns)) in by_total.into_iter().take(8) {
                s.push_str(&format!("    {:>9.3}ms  n={count}  {path}\n", *total_ns as f64 / 1e6));
            }
        }
        s
    }
}

/// Shared flags of the two follow-mode subcommands (`tail`, `train-tail`).
struct FollowOpts {
    path: String,
    interval_ms: u64,
    max_seconds: Option<f64>,
    once: bool,
}

impl FollowOpts {
    fn parse(cmd: &str, args: &[String]) -> FollowOpts {
        let mut path: Option<String> = None;
        let mut interval_ms: u64 = 2000;
        let mut max_seconds: Option<f64> = None;
        let mut once = false;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--interval-ms" => {
                    let v = it.next().unwrap_or_else(|| fail("--interval-ms needs a value"));
                    interval_ms =
                        v.parse().unwrap_or_else(|_| fail(&format!("bad --interval-ms {v}")));
                }
                "--max-seconds" => {
                    let v = it.next().unwrap_or_else(|| fail("--max-seconds needs a value"));
                    max_seconds =
                        Some(v.parse().unwrap_or_else(|_| fail(&format!("bad --max-seconds {v}"))));
                }
                "--once" => once = true,
                other if !other.starts_with("--") && path.is_none() => {
                    path = Some(other.to_string());
                }
                other => fail(&format!("unexpected argument {other}")),
            }
        }
        let path = path.unwrap_or_else(|| fail(&format!("{cmd} needs a trace path")));
        FollowOpts { path, interval_ms, max_seconds, once }
    }
}

/// Incremental reader over a live, size-rotated JSONL log: tracks a byte
/// offset, restarts from the head when the active file shrinks underneath
/// us (rotation), and only ever yields complete lines — a partially
/// written tail stays pending until its newline lands.
#[derive(Default)]
struct LogFollower {
    offset: u64,
    pending: String,
    rotations: u64,
}

impl LogFollower {
    /// Drains newly appended complete lines. `Err` means the file could
    /// not be opened — on a live run it may simply not exist yet.
    fn poll(&mut self, path: &str) -> Result<Vec<String>, String> {
        let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let len = f.metadata().map(|m| m.len()).unwrap_or(0);
        if len < self.offset {
            // The recorder rotated underneath us: the active file
            // restarted. Begin again from its head.
            self.rotations += 1;
            self.pending.clear();
            self.offset = 0;
        }
        if len > self.offset && f.seek(SeekFrom::Start(self.offset)).is_ok() {
            let mut buf = Vec::with_capacity((len - self.offset) as usize);
            if f.take(len - self.offset).read_to_end(&mut buf).is_ok() {
                self.offset = len;
                self.pending.push_str(&String::from_utf8_lossy(&buf));
            }
        }
        let mut lines = Vec::new();
        while let Some(pos) = self.pending.find('\n') {
            let line: String = self.pending.drain(..=pos).collect();
            let line = line.trim().to_string();
            if !line.is_empty() {
                lines.push(line);
            }
        }
        Ok(lines)
    }
}

/// Runs the follow loop: poll, ingest, render, sleep — until `--once`,
/// `--max-seconds`, or forever.
fn follow(
    opts: &FollowOpts,
    mut ingest: impl FnMut(&str),
    mut render: impl FnMut(u64, Duration) -> String,
) {
    let started = Instant::now();
    let mut follower = LogFollower::default();
    loop {
        match follower.poll(&opts.path) {
            Ok(lines) => {
                for line in &lines {
                    ingest(line);
                }
            }
            Err(e) => {
                if opts.once {
                    fail(&e);
                }
            }
        }
        out(render(follower.rotations, started.elapsed()));
        if opts.once {
            return;
        }
        if let Some(max) = opts.max_seconds {
            if started.elapsed().as_secs_f64() >= max {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms.max(10)));
    }
}

fn cmd_tail(args: &[String]) {
    let opts = FollowOpts::parse("tail", args);
    let path = opts.path.clone();
    let state = std::cell::RefCell::new(TailState::default());
    follow(
        &opts,
        |line| state.borrow_mut().ingest(line),
        |rotations, elapsed| {
            let mut st = state.borrow_mut();
            st.rotations = rotations;
            st.render(&path, elapsed)
        },
    );
}

/// Lenient-reads a trace log plus its rotated generation (`<path>.1`),
/// oldest records first. Returns the events, the hard per-line errors, and
/// the truncated-tail warnings.
fn read_trace(path: &str) -> (Vec<StreamEvent>, Vec<String>, Vec<String>) {
    let mut events = Vec::new();
    let mut hard = Vec::new();
    let mut warnings = Vec::new();
    let rotated = format!("{path}.1");
    if std::fs::metadata(&rotated).is_ok() {
        match read_file_lenient(&rotated) {
            Ok(read) => {
                for (line, e) in &read.errors {
                    hard.push(format!("{rotated}: line {line}: {e}"));
                }
                if let Some(w) = read.truncated_tail {
                    warnings.push(format!("{rotated}: {w}"));
                }
                events.extend(read.events);
            }
            Err(e) => hard.push(e),
        }
    }
    match read_file_lenient(path) {
        Ok(read) => {
            for (line, e) in &read.errors {
                hard.push(format!("{path}: line {line}: {e}"));
            }
            if let Some(w) = read.truncated_tail {
                warnings.push(format!("{path}: {w}"));
            }
            events.extend(read.events);
        }
        Err(e) => fail(&e),
    }
    (events, hard, warnings)
}

fn cmd_check_trace(args: &[String]) {
    let mut path: Option<String> = None;
    let mut expect_requests: Option<u64> = None;
    let mut expect_bench: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect-requests" => {
                let v = it.next().unwrap_or_else(|| fail("--expect-requests needs a value"));
                expect_requests =
                    Some(v.parse().unwrap_or_else(|_| fail(&format!("bad --expect-requests {v}"))));
            }
            "--expect-bench" => {
                expect_bench =
                    Some(it.next().unwrap_or_else(|| fail("--expect-bench needs a value")).clone());
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("check-trace needs a trace path"));

    let (events, hard, warnings) = read_trace(&path);
    for w in &warnings {
        eprintln!("obs-report: warning: {w}");
    }
    let mut failures: Vec<String> = hard;

    // Every request record must carry a unique, nonzero request id.
    let mut seen = std::collections::BTreeSet::new();
    let mut total_requests = 0u64;
    let mut recommend_requests = 0u64;
    for ev in events.iter().filter(|e| e.kind == "request") {
        total_requests += 1;
        if ev.name == "recommend" {
            recommend_requests += 1;
        }
        match ev.field_u64("req") {
            None | Some(0) => {
                failures.push(format!("request record without a request id: {:?}", ev.name));
            }
            Some(id) => {
                if !seen.insert(id) {
                    failures.push(format!("duplicate request id {id}"));
                }
            }
        }
    }

    match (expect_requests, &expect_bench) {
        (Some(want), _) if total_requests != want => {
            failures.push(format!("expected {want} request record(s), found {total_requests}"));
        }
        (None, Some(bench_path)) => {
            let bench = load_bench(bench_path);
            if recommend_requests != bench.requests {
                failures.push(format!(
                    "BENCH file drove {} recommend request(s) but the trace recorded {}",
                    bench.requests, recommend_requests
                ));
            }
        }
        _ => {}
    }

    // The closing metrics snapshot must include windowed p99 digests.
    let has_window_p99 = events.iter().any(|e| {
        e.kind == "metric"
            && e.field("metric_kind").and_then(JsonValue::as_str) == Some("window")
            && e.field("p99").is_some()
    });
    if !has_window_p99 {
        failures.push("no windowed p99 metric records (snapshot missing?)".to_string());
    }

    out(format!(
        "== obs-report check-trace: {path} ==\n  {} event(s), {} request record(s) \
         ({} recommend), {} warning(s)\n",
        events.len(),
        total_requests,
        recommend_requests,
        warnings.len(),
    ));
    if failures.is_empty() {
        out("  ok: unique request ids, zero interior parse errors, windowed p99 present\n");
        return;
    }
    for f in &failures {
        eprintln!("obs-report: check-trace: {f}");
    }
    std::process::exit(1);
}

/// How many recent epochs the train-tail sparklines cover.
const SPARK_WINDOW: usize = 32;

/// Renders a unicode sparkline over the window, min-max normalised.
/// Non-finite samples render as `!` — a NaN loss should leap off the page.
fn sparkline(values: &VecDeque<f64>) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '!'
            } else if hi <= lo {
                BARS[3]
            } else {
                BARS[(((v - lo) / (hi - lo) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Rolling per-(phase, source) training telemetry for `train-tail`.
#[derive(Default)]
struct PhaseTail {
    losses: VecDeque<f64>,
    grad_norms: VecDeque<f64>,
    epoch: u64,
    epochs: u64,
    eta_ms: f64,
}

#[derive(Default)]
struct TrainTailState {
    parse_errors: u64,
    run_id: Option<String>,
    /// `phase` or `phase/source` → rolling telemetry.
    phases: BTreeMap<String, PhaseTail>,
    anomaly_count: u64,
    /// Most recent anomaly descriptions (capped).
    recent_anomalies: VecDeque<String>,
}

impl TrainTailState {
    fn ingest(&mut self, line: &str) {
        let Ok(ev) = parse_line(line) else {
            self.parse_errors += 1;
            return;
        };
        if self.run_id.is_none() {
            if let Some(run) = ev.field("run").and_then(JsonValue::as_str) {
                self.run_id = Some(run.to_string());
            }
        }
        let phase_key = |ev: &StreamEvent| {
            let phase = ev.field("phase").and_then(JsonValue::as_str).unwrap_or("?").to_string();
            match ev.field("source").and_then(JsonValue::as_str) {
                Some(src) if !src.is_empty() => format!("{phase}/{src}"),
                _ => phase,
            }
        };
        match ev.kind.as_str() {
            "train_epoch" => {
                let slot = self.phases.entry(phase_key(&ev)).or_default();
                for (ring, key) in [(&mut slot.losses, "loss"), (&mut slot.grad_norms, "grad_norm")]
                {
                    if ring.len() == SPARK_WINDOW {
                        ring.pop_front();
                    }
                    ring.push_back(ev.field(key).and_then(JsonValue::as_f64).unwrap_or(f64::NAN));
                }
                slot.epoch = ev.field_u64("epoch").unwrap_or(0);
                slot.epochs = ev.field_u64("epochs").unwrap_or(0);
                slot.eta_ms = ev.field("eta_ms").and_then(JsonValue::as_f64).unwrap_or(0.0);
            }
            "train_anomaly" => {
                self.anomaly_count += 1;
                if self.recent_anomalies.len() == 4 {
                    self.recent_anomalies.pop_front();
                }
                self.recent_anomalies.push_back(format!(
                    "{} at {} epoch {}",
                    ev.name,
                    phase_key(&ev),
                    ev.field_u64("epoch").unwrap_or(0),
                ));
            }
            _ => {}
        }
    }

    fn render(&self, path: &str, rotations: u64, elapsed: Duration) -> String {
        let mut s = format!(
            "== obs-report train-tail: {path} (t+{:.1}s) ==\n  run: {}; {} anomaly event(s)",
            elapsed.as_secs_f64(),
            self.run_id.as_deref().unwrap_or("(not yet stamped)"),
            self.anomaly_count,
        );
        if self.parse_errors > 0 {
            s.push_str(&format!(", {} unparsable line(s) skipped", self.parse_errors));
        }
        if rotations > 0 {
            s.push_str(&format!(", {rotations} rotation(s)"));
        }
        s.push('\n');
        for (key, phase) in &self.phases {
            let loss = phase.losses.back().copied().unwrap_or(f64::NAN);
            let grad = phase.grad_norms.back().copied().unwrap_or(f64::NAN);
            s.push_str(&format!(
                "    {key:<18} epoch {:>3}/{:<3} loss {loss:<12.6} {:<w$} grad {grad:<10.3e} \
                 {:<w$} eta ~{:.1}s\n",
                phase.epoch + 1,
                phase.epochs,
                sparkline(&phase.losses),
                sparkline(&phase.grad_norms),
                phase.eta_ms / 1e3,
                w = SPARK_WINDOW,
            ));
        }
        if !self.recent_anomalies.is_empty() {
            s.push_str("  last anomalies:\n");
            for a in &self.recent_anomalies {
                s.push_str(&format!("    {a}\n"));
            }
        }
        s
    }
}

fn cmd_train_tail(args: &[String]) {
    let opts = FollowOpts::parse("train-tail", args);
    let path = opts.path.clone();
    let state = std::cell::RefCell::new(TrainTailState::default());
    follow(
        &opts,
        |line| state.borrow_mut().ingest(line),
        |rotations, elapsed| state.borrow().render(&path, rotations, elapsed),
    );
}

fn cmd_check_train(args: &[String]) {
    let mut path: Option<String> = None;
    let mut min_improvement = 0.0f64;
    let mut expect_epochs: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-improvement" => {
                let v = it.next().unwrap_or_else(|| fail("--min-improvement needs a value"));
                min_improvement =
                    v.parse().unwrap_or_else(|_| fail(&format!("bad --min-improvement {v}")));
            }
            "--expect-epochs" => {
                let v = it.next().unwrap_or_else(|| fail("--expect-epochs needs a value"));
                expect_epochs =
                    Some(v.parse().unwrap_or_else(|_| fail(&format!("bad --expect-epochs {v}"))));
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("check-train needs a trace path"));

    let (events, hard, warnings) = read_trace(&path);
    let mut failures: Vec<String> = hard;
    // Unlike serve traces (killed mid-flight by design), a training run
    // ends with an orderly flush — a torn last line means the run died.
    for w in warnings {
        failures.push(format!("truncated tail: {w}"));
    }

    let mut runs = std::collections::BTreeSet::new();
    let mut unstamped = 0u64;
    // `phase` or `phase/source` → (epoch, loss) in record order.
    let mut groups: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
    for ev in &events {
        if ev.kind != "train_epoch" && ev.kind != "train_anomaly" {
            continue;
        }
        match ev.field("run").and_then(JsonValue::as_str) {
            Some(run) if !run.is_empty() => {
                runs.insert(run.to_string());
            }
            _ => unstamped += 1,
        }
        let phase = ev.field("phase").and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let key = match ev.field("source").and_then(JsonValue::as_str) {
            Some(src) if !src.is_empty() => format!("{phase}/{src}"),
            _ => phase,
        };
        if ev.kind == "train_anomaly" {
            failures.push(format!(
                "anomaly event: {} at {key} epoch {}",
                ev.name,
                ev.field_u64("epoch").unwrap_or(0)
            ));
            continue;
        }
        groups.entry(key).or_default().push((
            ev.field_u64("epoch").unwrap_or(u64::MAX),
            ev.field("loss").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
        ));
    }

    let total: usize = groups.values().map(Vec::len).sum();
    if total == 0 {
        failures.push("no train_epoch records in the trace".to_string());
    } else {
        match runs.len() {
            0 => failures.push("no run ID stamped on any training record".to_string()),
            1 => {}
            _ => failures.push(format!("multiple run IDs in one trace: {runs:?}")),
        }
    }
    if unstamped > 0 {
        failures.push(format!("{unstamped} training record(s) without a run ID"));
    }
    if let Some(want) = expect_epochs {
        if total as u64 != want {
            failures.push(format!("expected {want} train_epoch record(s), found {total}"));
        }
    }
    for (key, recs) in &groups {
        // Every epoch traced exactly once, in order, starting at zero.
        for (i, (epoch, _)) in recs.iter().enumerate() {
            if *epoch != i as u64 {
                failures.push(format!(
                    "{key}: epoch sequence broken at record {i} (saw epoch {epoch})"
                ));
                break;
            }
        }
        if recs.iter().any(|(_, loss)| !loss.is_finite()) {
            failures.push(format!("{key}: non-finite loss recorded"));
            continue;
        }
        let first = recs.first().map_or(f64::NAN, |(_, l)| *l);
        let best = recs.iter().map(|(_, l)| *l).fold(f64::INFINITY, f64::min);
        if first - best < min_improvement {
            failures.push(format!(
                "{key}: loss improved {:.6} (first {first:.6} -> best {best:.6}), \
                 below the {min_improvement:.6} floor",
                first - best
            ));
        }
    }

    out(format!(
        "== obs-report check-train: {path} ==\n  {} event(s), {total} train_epoch record(s) \
         across {} phase group(s), run {}\n",
        events.len(),
        groups.len(),
        runs.iter().next().map_or("(none)", String::as_str),
    ));
    if failures.is_empty() {
        out("  ok: one run ID, contiguous epoch sequences, zero anomalies, loss improved\n");
        return;
    }
    for f in &failures {
        eprintln!("obs-report: check-train: {f}");
    }
    std::process::exit(1);
}

fn cmd_check_feedback(args: &[String]) {
    let mut path: Option<String> = None;
    let mut threshold: usize = metadpa_feedback::DEFAULT_THRESHOLD;
    let mut trace: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it.next().unwrap_or_else(|| fail("--threshold needs a value"));
                threshold = v.parse().unwrap_or_else(|_| fail(&format!("bad --threshold {v}")));
            }
            "--trace" => {
                trace = Some(it.next().unwrap_or_else(|| fail("--trace needs a value")).clone());
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("check-feedback needs a feedback log path"));

    let read = match metadpa_feedback::read_log(&path) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    for w in &read.truncated_tails {
        eprintln!("obs-report: warning: {w}");
    }
    let mut failures: Vec<String> = read.interior_errors.clone();
    if read.skipped > 0 {
        failures.push(format!("{} non-feedback record(s) in the log", read.skipped));
    }
    if read.events.is_empty() {
        failures.push("no feedback events in the log".to_string());
    }

    // Every record carries the same run-ledger key.
    let mut runs = std::collections::BTreeSet::new();
    let mut unstamped = 0u64;
    for ev in &read.events {
        if ev.run_id.is_empty() {
            unstamped += 1;
        } else {
            runs.insert(ev.run_id.clone());
        }
    }
    if unstamped > 0 {
        failures.push(format!("{unstamped} event(s) without a run ID"));
    }
    if runs.len() > 1 {
        failures.push(format!("multiple run IDs in one log: {runs:?}"));
    }

    // The surviving window is strictly contiguous (rotation may have
    // dropped a prefix, never interior records).
    for (i, pair) in read.events.windows(2).enumerate() {
        if pair[1].seq != pair[0].seq + 1 {
            failures.push(format!(
                "sequence gap after record {i}: seq {} then {}",
                pair[0].seq, pair[1].seq
            ));
            break;
        }
    }

    // The replay oracle: what a clean consumer of this log must have done.
    let cfg = metadpa_feedback::GraduationConfig::with_threshold(threshold);
    let expected = metadpa_feedback::expected_outcome(&read.events, cfg);

    if let Some(trace_path) = &trace {
        let (trace_events, hard, warnings) = read_trace(trace_path);
        for w in &warnings {
            eprintln!("obs-report: warning: {w}");
        }
        failures.extend(hard);
        let mut graduations = 0u64;
        let mut refreshes = 0u64;
        for ev in trace_events.iter().filter(|e| e.name == "feedback.graduation") {
            match ev.field("first").and_then(JsonValue::as_bool) {
                Some(true) => graduations += 1,
                Some(false) => refreshes += 1,
                None => failures.push(format!(
                    "feedback.graduation event without a \"first\" field (seq {})",
                    ev.field_u64("seq").unwrap_or(0)
                )),
            }
        }
        if graduations != expected.graduations || refreshes != expected.refreshes {
            failures.push(format!(
                "live adapter diverged from the replay oracle: trace has {graduations} \
                 graduation(s) + {refreshes} refresh(es), replay expects {} + {}",
                expected.graduations, expected.refreshes
            ));
        }
        // The serving artifact and the feedback log must be the same run.
        let trace_run = trace_events
            .iter()
            .find(|e| e.kind == "event" && e.name == "serve.artifact")
            .and_then(|e| e.field("run_id").and_then(JsonValue::as_str).map(str::to_string));
        if let (Some(trace_run), Some(log_run)) = (trace_run, runs.iter().next()) {
            if !trace_run.is_empty() && trace_run != *log_run {
                failures.push(format!(
                    "trace serves artifact run {trace_run:?} but the log is stamped {log_run:?}"
                ));
            }
        }
    }

    out(format!(
        "== obs-report check-feedback: {path} ==\n  {} event(s), run {}, \
         replay expects {} graduation(s) + {} refresh(es) at threshold {threshold}\n",
        read.events.len(),
        runs.iter().next().map_or("(none)", String::as_str),
        expected.graduations,
        expected.refreshes,
    ));
    if failures.is_empty() {
        out("  ok: one run ID, contiguous sequence, zero interior parse errors");
        if trace.is_some() {
            out(", live adapter matches the replay oracle");
        }
        out("\n");
        return;
    }
    for f in &failures {
        eprintln!("obs-report: check-feedback: {f}");
    }
    std::process::exit(1);
}

fn cmd_lineage(args: &[String]) {
    let mut path: Option<String> = None;
    let mut ckpt: Option<String> = None;
    let mut health: Option<String> = None;
    let mut feedback: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ckpt" => {
                ckpt = Some(it.next().unwrap_or_else(|| fail("--ckpt needs a value")).clone())
            }
            "--health" => {
                health = Some(it.next().unwrap_or_else(|| fail("--health needs a value")).clone());
            }
            "--feedback" => {
                feedback =
                    Some(it.next().unwrap_or_else(|| fail("--feedback needs a value")).clone());
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("lineage needs a trace path"));

    let (events, hard, warnings) = read_trace(&path);
    for w in warnings.iter().chain(hard.iter()) {
        eprintln!("obs-report: warning: {w}");
    }
    let mut lineage = Lineage::from_events(&events);
    if let Some(ckpt_path) = ckpt {
        match metadpa_serve::load_artifact(&ckpt_path) {
            Ok(artifact) => lineage = lineage.with_ckpt(&artifact.meta.run_id),
            Err(e) => fail(&format!("{ckpt_path}: {e}")),
        }
    }
    if let Some(health_path) = health {
        let body = match std::fs::read_to_string(&health_path) {
            Ok(b) => b,
            Err(e) => fail(&format!("{health_path}: {e}")),
        };
        lineage = lineage.with_health(&run_id_from_health_json(&body).unwrap_or_default());
    }
    if let Some(feedback_path) = feedback {
        match metadpa_feedback::read_log(&feedback_path) {
            Ok(read) => {
                // An empty or unstamped log contributes an unstamped
                // source, which breaks the join — exactly right.
                let run = read
                    .events
                    .iter()
                    .map(|e| e.run_id.as_str())
                    .find(|r| !r.is_empty())
                    .unwrap_or_default();
                lineage = lineage.with_feedback(run);
            }
            Err(e) => fail(&format!("{feedback_path}: {e}")),
        }
    }
    out(format!("== obs-report lineage: {path} ==\n"));
    out(lineage.render());
    if lineage.join().is_err() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "report" => cmd_report(rest),
            "diff" => cmd_diff(rest),
            "check" => cmd_check(rest),
            "tail" => cmd_tail(rest),
            "check-trace" => cmd_check_trace(rest),
            "train-tail" => cmd_train_tail(rest),
            "check-train" => cmd_check_train(rest),
            "check-feedback" => cmd_check_feedback(rest),
            "lineage" => cmd_lineage(rest),
            other => fail(&format!("unknown subcommand {other}")),
        },
        None => fail("missing subcommand"),
    }
}

//! `obs-report`: offline analysis of recorded observability streams and
//! the BENCH perf-baseline regression gate.
//!
//! ```text
//! obs-report report <run.jsonl> [--json]     flamegraph + metrics table
//! obs-report diff <a.jsonl> <b.jsonl>        per-span / per-metric deltas
//! obs-report check <current.json> --baseline <BENCH.json>
//!            [--tolerance 0.15] [--warn-only]
//! obs-report tail <trace.jsonl> [--interval-ms 2000] [--max-seconds S] [--once]
//! obs-report check-trace <trace.jsonl> [--expect-requests N] [--expect-bench BENCH.json]
//! ```
//!
//! `report` renders the span tree as a text flamegraph (inclusive and
//! exclusive time per path, hot paths by self time), the metrics table
//! reconstructed from the stream's `metric` records, and — with `--json`
//! — a machine-readable summary instead.
//!
//! `check` compares per-block p50 wall time against a committed baseline
//! and exits `1` when any block regressed beyond the tolerance. Because a
//! timing baseline only binds on the hardware that recorded it, a host
//! fingerprint mismatch downgrades failures to warnings unless the
//! `METADPA_BENCH_STRICT` environment variable is set (non-empty, not
//! `"0"`); `--warn-only` downgrades unconditionally.
//!
//! `tail` follows a live serve trace log (the `--trace-out` file of
//! `metadpa-serve run` / `serve-loadgen`), re-rendering a rolling summary
//! every interval: per-endpoint/per-state latency percentiles over the
//! most recent requests plus the hottest span paths by total time. It
//! survives log rotation and skips partially written lines. `--once`
//! renders a single snapshot of what is on disk and exits.
//!
//! `check-trace` stream-parses a finished trace log (rotated generation
//! included) with the crash-lenient reader and exits `1` unless: there
//! are zero interior parse errors (a truncated final line is a warning,
//! not an error), every request record carries a unique nonzero request
//! id, the request count matches `--expect-requests` (or, with
//! `--expect-bench`, the recommend-endpoint count matches the BENCH
//! file's `requests`), and the closing metrics snapshot carries windowed
//! p99 records.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Seek, SeekFrom, Write};
use std::time::{Duration, Instant};

use metadpa_obs::diff::{check, StreamDiff};
use metadpa_obs::report::{BenchReport, Report};
use metadpa_obs::stream::{parse_line, read_file, read_file_lenient, JsonValue, StreamEvent};

const USAGE: &str = "usage:
  obs-report report <run.jsonl> [--json]
  obs-report diff <a.jsonl> <b.jsonl>
  obs-report check <current.json> --baseline <BENCH.json> [--tolerance 0.15] [--warn-only]
  obs-report tail <trace.jsonl> [--interval-ms 2000] [--max-seconds S] [--once]
  obs-report check-trace <trace.jsonl> [--expect-requests N] [--expect-bench BENCH.json]";

fn fail(msg: &str) -> ! {
    eprintln!("obs-report: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Writes to stdout, exiting quietly when the downstream pipe has closed
/// (`obs-report report run.jsonl | head` must not panic).
fn out(text: impl AsRef<str>) {
    if std::io::stdout().write_all(text.as_ref().as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn load_report(path: &str) -> Report {
    match read_file(path) {
        Ok(events) => Report::from_events(&events),
        Err(e) => fail(&e),
    }
}

fn load_bench(path: &str) -> BenchReport {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("{path}: {e}")),
    };
    match BenchReport::from_json(&text) {
        Ok(r) => r,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn cmd_report(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else { fail("report takes exactly one stream path") };
    let report = load_report(path);
    if json {
        out(format!("{}\n", report.to_json()));
        return;
    }
    out(format!("== obs-report: {path} ==\n"));
    for (kind, n) in &report.record_counts {
        out(format!("  {n} {kind} record(s)\n"));
    }
    if !report.manifest.is_empty() {
        let fields: Vec<String> =
            report.manifest.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
        out(format!("  manifest: {}\n", fields.join(" ")));
    }
    out("\n");
    out(report.render_flamegraph());
    out("\n");
    out(report.render_metrics());
}

fn cmd_diff(args: &[String]) {
    let [a, b] = args else { fail("diff takes exactly two stream paths") };
    let ra = load_report(a);
    let rb = load_report(b);
    out(format!("== obs-report diff: {a} -> {b} ==\n"));
    out(StreamDiff::between(&ra, &rb).render());
}

fn strict_env() -> bool {
    std::env::var("METADPA_BENCH_STRICT").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

fn cmd_check(args: &[String]) {
    let mut current = None;
    let mut baseline = None;
    let mut tolerance = 0.15f64;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(it.next().unwrap_or_else(|| fail("--baseline needs a value")));
            }
            "--tolerance" => {
                let v = it.next().unwrap_or_else(|| fail("--tolerance needs a value"));
                tolerance = v.parse().unwrap_or_else(|_| fail(&format!("bad --tolerance {v}")));
            }
            "--warn-only" => warn_only = true,
            other if !other.starts_with("--") && current.is_none() => {
                current = Some(other.to_string());
            }
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let current = current.unwrap_or_else(|| fail("check needs a current BENCH json"));
    let baseline = baseline.unwrap_or_else(|| fail("check needs --baseline <BENCH.json>"));
    let cur = load_bench(&current);
    let base = load_bench(baseline);
    let gate = check(&cur, &base, tolerance);
    out(format!(
        "== obs-report check: {current} (rev {}) vs baseline {baseline} (rev {}) ==\n",
        cur.git_rev, base.git_rev
    ));
    out(gate.render(tolerance));
    if gate.regressions == 0 {
        return;
    }
    if warn_only {
        out(format!("warn-only: {} regression(s) NOT gating (--warn-only)\n", gate.regressions));
        return;
    }
    if !gate.hardware_match && !strict_env() {
        out(format!(
            "warn-only: baseline hardware differs ({:?} vs {:?}); {} regression(s) NOT gating \
             (set METADPA_BENCH_STRICT=1 to fail anyway)\n",
            base.host, cur.host, gate.regressions
        ));
        return;
    }
    eprintln!("obs-report: {} perf regression(s) beyond tolerance", gate.regressions);
    std::process::exit(1);
}

/// How many recent per-key request durations the tail keeps: the rolling
/// window the percentiles are computed over.
const TAIL_WINDOW: usize = 4096;

/// Rolling aggregates for `obs-report tail`.
#[derive(Default)]
struct TailState {
    parse_errors: u64,
    requests: u64,
    error_responses: u64,
    /// `endpoint/state` → most recent request durations (µs).
    recent_us: BTreeMap<String, VecDeque<u64>>,
    /// Span path → (count, total ns), cumulative over the whole log.
    spans: BTreeMap<String, (u64, u64)>,
    rotations: u64,
}

impl TailState {
    fn ingest(&mut self, line: &str) {
        let Ok(ev) = parse_line(line) else {
            self.parse_errors += 1;
            return;
        };
        match ev.kind.as_str() {
            "request" => {
                self.requests += 1;
                if ev.field_u64("status").unwrap_or(0) >= 400 {
                    self.error_responses += 1;
                }
                let state = ev.field("state").and_then(JsonValue::as_str).unwrap_or("");
                let key =
                    if state.is_empty() { ev.name.clone() } else { format!("{}/{state}", ev.name) };
                let ring = self.recent_us.entry(key).or_default();
                if ring.len() == TAIL_WINDOW {
                    ring.pop_front();
                }
                ring.push_back(ev.field_u64("dur_us").unwrap_or(0));
            }
            "span" => {
                let slot = self.spans.entry(ev.name).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += ev
                    .fields
                    .iter()
                    .find(|(k, _)| k == "dur_ns")
                    .map_or(0, |(_, v)| v.as_u64().unwrap_or(0));
            }
            _ => {}
        }
    }

    fn render(&self, path: &str, elapsed: Duration) -> String {
        let mut s = format!(
            "== obs-report tail: {path} (t+{:.1}s) ==\n  requests: {} total, {} error responses",
            elapsed.as_secs_f64(),
            self.requests,
            self.error_responses,
        );
        if self.parse_errors > 0 {
            s.push_str(&format!(", {} unparsable line(s) skipped", self.parse_errors));
        }
        if self.rotations > 0 {
            s.push_str(&format!(", {} rotation(s)", self.rotations));
        }
        s.push('\n');
        for (key, ring) in &self.recent_us {
            let mut sorted: Vec<u64> = ring.iter().copied().collect();
            sorted.sort_unstable();
            let q = |p: f64| -> u64 {
                if sorted.is_empty() {
                    return 0;
                }
                let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            };
            s.push_str(&format!(
                "    {key}: n={} p50={}us p90={}us p99={}us (last {} requests)\n",
                ring.len(),
                q(0.5),
                q(0.9),
                q(0.99),
                ring.len(),
            ));
        }
        if !self.spans.is_empty() {
            let mut by_total: Vec<(&String, &(u64, u64))> = self.spans.iter().collect();
            by_total.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
            s.push_str("  hottest span paths by total time:\n");
            for (path, (count, total_ns)) in by_total.into_iter().take(8) {
                s.push_str(&format!("    {:>9.3}ms  n={count}  {path}\n", *total_ns as f64 / 1e6));
            }
        }
        s
    }
}

fn cmd_tail(args: &[String]) {
    let mut path: Option<String> = None;
    let mut interval_ms: u64 = 2000;
    let mut max_seconds: Option<f64> = None;
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval-ms" => {
                let v = it.next().unwrap_or_else(|| fail("--interval-ms needs a value"));
                interval_ms = v.parse().unwrap_or_else(|_| fail(&format!("bad --interval-ms {v}")));
            }
            "--max-seconds" => {
                let v = it.next().unwrap_or_else(|| fail("--max-seconds needs a value"));
                max_seconds =
                    Some(v.parse().unwrap_or_else(|_| fail(&format!("bad --max-seconds {v}"))));
            }
            "--once" => once = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("tail needs a trace path"));

    let started = Instant::now();
    let mut state = TailState::default();
    let mut offset: u64 = 0;
    let mut pending = String::new();
    loop {
        match std::fs::File::open(&path) {
            Ok(mut f) => {
                let len = f.metadata().map(|m| m.len()).unwrap_or(0);
                if len < offset {
                    // The recorder rotated underneath us: the active file
                    // restarted. Begin again from its head.
                    state.rotations += 1;
                    pending.clear();
                    offset = 0;
                }
                if len > offset && f.seek(SeekFrom::Start(offset)).is_ok() {
                    let mut buf = Vec::with_capacity((len - offset) as usize);
                    if f.take(len - offset).read_to_end(&mut buf).is_ok() {
                        offset = len;
                        pending.push_str(&String::from_utf8_lossy(&buf));
                    }
                }
            }
            Err(e) => {
                if once {
                    fail(&format!("{path}: {e}"));
                }
                // A live server may not have created the log yet.
            }
        }
        while let Some(pos) = pending.find('\n') {
            let line: String = pending.drain(..=pos).collect();
            let line = line.trim();
            if !line.is_empty() {
                state.ingest(line);
            }
        }
        out(state.render(&path, started.elapsed()));
        if once {
            return;
        }
        if let Some(max) = max_seconds {
            if started.elapsed().as_secs_f64() >= max {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(10)));
    }
}

/// Lenient-reads a trace log plus its rotated generation (`<path>.1`),
/// oldest records first. Returns the events, the hard per-line errors, and
/// the truncated-tail warnings.
fn read_trace(path: &str) -> (Vec<StreamEvent>, Vec<String>, Vec<String>) {
    let mut events = Vec::new();
    let mut hard = Vec::new();
    let mut warnings = Vec::new();
    let rotated = format!("{path}.1");
    if std::fs::metadata(&rotated).is_ok() {
        match read_file_lenient(&rotated) {
            Ok(read) => {
                for (line, e) in &read.errors {
                    hard.push(format!("{rotated}: line {line}: {e}"));
                }
                if let Some(w) = read.truncated_tail {
                    warnings.push(format!("{rotated}: {w}"));
                }
                events.extend(read.events);
            }
            Err(e) => hard.push(e),
        }
    }
    match read_file_lenient(path) {
        Ok(read) => {
            for (line, e) in &read.errors {
                hard.push(format!("{path}: line {line}: {e}"));
            }
            if let Some(w) = read.truncated_tail {
                warnings.push(format!("{path}: {w}"));
            }
            events.extend(read.events);
        }
        Err(e) => fail(&e),
    }
    (events, hard, warnings)
}

fn cmd_check_trace(args: &[String]) {
    let mut path: Option<String> = None;
    let mut expect_requests: Option<u64> = None;
    let mut expect_bench: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect-requests" => {
                let v = it.next().unwrap_or_else(|| fail("--expect-requests needs a value"));
                expect_requests =
                    Some(v.parse().unwrap_or_else(|_| fail(&format!("bad --expect-requests {v}"))));
            }
            "--expect-bench" => {
                expect_bench =
                    Some(it.next().unwrap_or_else(|| fail("--expect-bench needs a value")).clone());
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("check-trace needs a trace path"));

    let (events, hard, warnings) = read_trace(&path);
    for w in &warnings {
        eprintln!("obs-report: warning: {w}");
    }
    let mut failures: Vec<String> = hard;

    // Every request record must carry a unique, nonzero request id.
    let mut seen = std::collections::BTreeSet::new();
    let mut total_requests = 0u64;
    let mut recommend_requests = 0u64;
    for ev in events.iter().filter(|e| e.kind == "request") {
        total_requests += 1;
        if ev.name == "recommend" {
            recommend_requests += 1;
        }
        match ev.field_u64("req") {
            None | Some(0) => {
                failures.push(format!("request record without a request id: {:?}", ev.name));
            }
            Some(id) => {
                if !seen.insert(id) {
                    failures.push(format!("duplicate request id {id}"));
                }
            }
        }
    }

    match (expect_requests, &expect_bench) {
        (Some(want), _) if total_requests != want => {
            failures.push(format!("expected {want} request record(s), found {total_requests}"));
        }
        (None, Some(bench_path)) => {
            let bench = load_bench(bench_path);
            if recommend_requests != bench.requests {
                failures.push(format!(
                    "BENCH file drove {} recommend request(s) but the trace recorded {}",
                    bench.requests, recommend_requests
                ));
            }
        }
        _ => {}
    }

    // The closing metrics snapshot must include windowed p99 digests.
    let has_window_p99 = events.iter().any(|e| {
        e.kind == "metric"
            && e.field("metric_kind").and_then(JsonValue::as_str) == Some("window")
            && e.field("p99").is_some()
    });
    if !has_window_p99 {
        failures.push("no windowed p99 metric records (snapshot missing?)".to_string());
    }

    out(format!(
        "== obs-report check-trace: {path} ==\n  {} event(s), {} request record(s) \
         ({} recommend), {} warning(s)\n",
        events.len(),
        total_requests,
        recommend_requests,
        warnings.len(),
    ));
    if failures.is_empty() {
        out("  ok: unique request ids, zero interior parse errors, windowed p99 present\n");
        return;
    }
    for f in &failures {
        eprintln!("obs-report: check-trace: {f}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "report" => cmd_report(rest),
            "diff" => cmd_diff(rest),
            "check" => cmd_check(rest),
            "tail" => cmd_tail(rest),
            "check-trace" => cmd_check_trace(rest),
            other => fail(&format!("unknown subcommand {other}")),
        },
        None => fail("missing subcommand"),
    }
}

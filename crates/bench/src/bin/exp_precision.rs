//! f32-vs-f64 serving precision: ranking-quality deltas per scenario.
//!
//! Trains one MetaDPA pipeline, exports the same θ twice — once as the
//! default (f64-encoded, exact-kernel) artifact and once with
//! `--precision f32` (narrow encoding, fused-FMA serving kernels) — then
//! replays every evaluation instance of all four scenarios through both
//! recommenders and reports HR@10 / NDCG@10 side by side, plus the
//! largest per-item score divergence observed anywhere in the sweep.
//!
//! Both recommenders serve at θ (no per-request adaptation): adapted
//! requests always take the exact full-pass path regardless of artifact
//! precision, so θ-scoring is exactly the surface the f32 path changes.
//! The numbers this prints back the DESIGN.md §14 claim that the fused
//! kernels' one-rounding-per-mul-add drift is metric-invisible, and are
//! recorded in EXPERIMENTS.md.

use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, world_by_name};
use metadpa_bench::table::TextTable;
use metadpa_core::artifact::{ArtifactRecommender, Precision};
use metadpa_core::{MetaDpa, MetaDpaConfig};
use metadpa_data::splits::Scenario;
use metadpa_metrics::MetricSummary;
use metadpa_serve::{load_artifact, save_artifact};

const K: usize = 10;

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("metadpa_exp_precision_{tag}_{}.ckpt", std::process::id()))
        .to_string_lossy()
        .to_string()
}

/// Scores one scenario's eval instances at θ; also tracks the largest
/// absolute per-candidate score difference against `reference_scores`
/// (pass `None` for the first / reference recommender).
fn evaluate(
    rec: &mut ArtifactRecommender,
    scenario: &Scenario,
    mut per_instance_out: Option<&mut Vec<Vec<f32>>>,
    reference: Option<&[Vec<f32>]>,
    max_abs_delta: &mut f32,
) -> MetricSummary {
    let mut summary = MetricSummary::default();
    for (idx, instance) in scenario.eval.iter().enumerate() {
        rec.recommend(instance.user, 1, None).expect("warm scoring at theta");
        let all = rec.last_scores();
        let positive = all[instance.positive];
        let negatives: Vec<f32> = instance.negatives.iter().map(|&i| all[i]).collect();
        summary.add_instance(positive, &negatives, K);
        let mut candidate_scores = Vec::with_capacity(1 + negatives.len());
        candidate_scores.push(positive);
        candidate_scores.extend_from_slice(&negatives);
        if let Some(reference) = reference {
            for (a, b) in reference[idx].iter().zip(&candidate_scores) {
                *max_abs_delta = max_abs_delta.max((a - b).abs());
            }
        }
        if let Some(out) = per_instance_out.as_deref_mut() {
            out.push(candidate_scores);
        }
    }
    summary
}

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_precision", &args);
    println!(
        "== f32 serving precision: quality deltas (seed {}, fast={}) ==",
        args.seed, args.fast
    );

    let target = if args.fast { "tiny" } else { "books" };
    let world = world_by_name(target, args.seed);
    let scenarios = build_scenarios(&world, args.seed);

    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    {
        use metadpa_core::eval::Recommender;
        model.fit(&world, &scenarios[0]);
    }
    let mut artifact = model.export_artifact(&world);

    let f64_path = temp_path("f64");
    let f32_path = temp_path("f32");
    artifact.meta.precision = Precision::F64;
    save_artifact(&f64_path, &artifact).expect("save f64 artifact");
    artifact.meta.precision = Precision::F32;
    save_artifact(&f32_path, &artifact).expect("save f32 artifact");
    let mut exact =
        load_artifact(&f64_path).expect("load f64").into_recommender().expect("f64 recommender");
    let mut fused =
        load_artifact(&f32_path).expect("load f32").into_recommender().expect("f32 recommender");
    let _ = std::fs::remove_file(&f64_path);
    let _ = std::fs::remove_file(&f32_path);

    let mut table = TextTable::new(&[
        "Scenario",
        "HR@10 f64",
        "HR@10 f32",
        "dHR",
        "NDCG@10 f64",
        "NDCG@10 f32",
        "dNDCG",
    ]);
    let mut max_abs_delta = 0.0f32;
    for scenario in &scenarios {
        let mut reference_scores = Vec::with_capacity(scenario.eval.len());
        let a =
            evaluate(&mut exact, scenario, Some(&mut reference_scores), None, &mut max_abs_delta);
        let b = evaluate(&mut fused, scenario, None, Some(&reference_scores), &mut max_abs_delta);
        table.row(vec![
            scenario.kind.label().to_string(),
            format!("{:.4}", a.hr),
            format!("{:.4}", b.hr),
            format!("{:+.4}", b.hr - a.hr),
            format!("{:.4}", a.ndcg),
            format!("{:.4}", b.ndcg),
            format!("{:+.4}", b.ndcg - a.ndcg),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "max |score(f32) - score(f64)| over all candidates: {max_abs_delta:.3e}\n\
         Shape to check: every delta row is ~0 (the fused drift is orders of\n\
         magnitude below the score gaps that decide ranks); the max score\n\
         divergence stays within the DESIGN.md §14 epsilon."
    );
}

//! Table III: overall performance comparison.
//!
//! Eight methods (NeuMF, MeLU, MetaCF, CoNN, DAML, TDAR, CATN, MetaDPA) ×
//! four scenarios (C-U, C-I, C-UI, Warm-start) × two targets (Books, CDs) ×
//! four metrics (HR@10, MRR@10, NDCG@10, AUC). Best per column marked `*`,
//! second best `°` — the paper's bold / ° convention.

use metadpa_baselines::full_roster;
use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_roster_on_world, world_by_name};
use metadpa_bench::table::{best_two, mark_value, TextTable};
use metadpa_data::splits::ScenarioKind;

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_table3", &args);
    println!("== Table III: overall comparison (seed {}, fast={}) ==", args.seed, args.fast);

    let targets: &[&str] = if args.fast { &["tiny"] } else { &["books", "cds"] };
    for &target in targets {
        let world = world_by_name(target, args.seed);
        let scenarios = build_scenarios(&world, args.seed);
        let mut roster = full_roster(args.seed, args.fast);
        let results = run_roster_on_world(&mut roster, &world, &scenarios, &[10]);

        println!("\n--- Target: {} ---", world.target.name);
        for (s_idx, kind) in ScenarioKind::ALL.iter().enumerate() {
            let mut table = TextTable::new(&["Method", "HR@10", "MRR@10", "NDCG@10", "AUC"]);
            let column = |f: &dyn Fn(&metadpa_metrics::MetricSummary) -> f32| -> Vec<f32> {
                results.iter().map(|m| f(m[s_idx].summary())).collect()
            };
            let hrs = column(&|s| s.hr);
            let mrrs = column(&|s| s.mrr);
            let ndcgs = column(&|s| s.ndcg);
            let aucs = column(&|s| s.auc);
            let (bh, sh) = best_two(&hrs);
            let (bm, sm) = best_two(&mrrs);
            let (bn, sn) = best_two(&ndcgs);
            let (ba, sa) = best_two(&aucs);
            for (m_idx, per_method) in results.iter().enumerate() {
                table.row(vec![
                    per_method[s_idx].method.clone(),
                    mark_value(hrs[m_idx], bh, sh),
                    mark_value(mrrs[m_idx], bm, sm),
                    mark_value(ndcgs[m_idx], bn, sn),
                    mark_value(aucs[m_idx], ba, sa),
                ]);
            }
            println!("\n{} ({} eval instances):", kind.label(), scenarios[s_idx].eval.len());
            println!("{}", table.render());
        }
    }
    println!(
        "Paper shapes to check: MetaDPA leads NDCG@10 everywhere; the meta-learners\n\
         (MeLU/MetaCF) lead the remaining baselines under cold-start; NeuMF sits near\n\
         chance AUC under cold-start; content models (CoNN/DAML) hold the middle."
    );
}

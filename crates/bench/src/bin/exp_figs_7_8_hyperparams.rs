//! Figs. 7-8: sensitivity to the constraint weights β₁ (MDI) and β₂ (ME)
//! on CDs (RQ5).
//!
//! The paper grid-searches both weights over {1e-2, 1e-1, 1, 1e1, 1e2}
//! and reports NDCG@10 per scenario while the other weight is held at its
//! optimum (β₁ = 0.1, β₂ = 1). Expected shapes (§V-F): β₁ is the more
//! sensitive of the two (MDI affects both adaptation and generation, ME
//! only generation), and warm-start is more sensitive than cold-start.

use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_method_on_world, world_by_name};
use metadpa_bench::table::TextTable;
use metadpa_core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa_data::splits::ScenarioKind;

const GRID: [f32; 5] = [0.01, 0.1, 1.0, 10.0, 100.0];

fn run_grid(
    which: &str,
    args: &ExpArgs,
    world: &metadpa_data::domain::World,
    scenarios: &[metadpa_data::splits::Scenario],
) -> (TextTable, Vec<f32>) {
    let mut table = TextTable::new(&[which, "C-U N@10", "C-I N@10", "C-UI N@10", "Warm N@10"]);
    let mut all_values = Vec::new();
    for &beta in &GRID {
        let mut cfg = if args.fast { MetaDpaConfig::fast() } else { MetaDpaConfig::default() };
        cfg.seed = args.seed;
        match which {
            "beta1" => cfg.dual.beta1 = beta,
            _ => cfg.dual.beta2 = beta,
        }
        let mut model = MetaDpa::new(cfg);
        let results = run_method_on_world(&mut model, world, scenarios, &[10]);
        let idx_of = |k: ScenarioKind| {
            ScenarioKind::ALL.iter().position(|&x| x == k).expect("scenario present")
        };
        let ndcg = |k: ScenarioKind| results[idx_of(k)].summary().ndcg;
        let row = [
            ndcg(ScenarioKind::ColdUser),
            ndcg(ScenarioKind::ColdItem),
            ndcg(ScenarioKind::ColdUserItem),
            ndcg(ScenarioKind::Warm),
        ];
        all_values.extend_from_slice(&row);
        table.row(vec![
            format!("{beta}"),
            format!("{:.4}", row[0]),
            format!("{:.4}", row[1]),
            format!("{:.4}", row[2]),
            format!("{:.4}", row[3]),
        ]);
        metadpa_obs::event!("figs7_8.point_done", "which" => which, "beta" => beta as f64);
    }
    (table, all_values)
}

fn spread(values: &[f32]) -> f32 {
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    max - min
}

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_figs_7_8_hyperparams", &args);
    println!(
        "== Figs. 7-8: beta1/beta2 sensitivity on CDs (seed {}, fast={}) ==",
        args.seed, args.fast
    );
    let world = world_by_name(if args.fast { "tiny" } else { "cds" }, args.seed);
    let scenarios = build_scenarios(&world, args.seed);

    let (t1, v1) = run_grid("beta1", &args, &world, &scenarios);
    println!("\nFig. 7 — sweep beta1 (MDI weight), beta2 fixed at 1:\n{}", t1.render());
    let (t2, v2) = run_grid("beta2", &args, &world, &scenarios);
    println!("Fig. 8 — sweep beta2 (ME weight), beta1 fixed at 0.1:\n{}", t2.render());

    println!(
        "Sensitivity (NDCG@10 spread across the grid): beta1 = {:.4}, beta2 = {:.4}",
        spread(&v1),
        spread(&v2)
    );
    println!(
        "Paper shapes to check: beta1's spread exceeds beta2's (MDI touches both\n\
         adaptation and generation); warm-start columns vary more than cold-start."
    );
}

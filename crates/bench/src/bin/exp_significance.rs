//! §V-D: one-sided Wilcoxon signed-rank significance test.
//!
//! The paper re-splits train/test 30 times, runs MetaDPA and the
//! second-best method on each split, and tests H0 "the median metric
//! difference is non-positive" per metric and scenario. This binary runs
//! the same protocol on CDs with MeLU as the reference (the paper's
//! second-best on Books; pass `--splits` to change the split count).

use metadpa_baselines::melu::{Melu, MeluConfig};
use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_method_on_world, world_by_name};
use metadpa_bench::table::TextTable;
use metadpa_core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa_data::splits::ScenarioKind;
use metadpa_metrics::wilcoxon_signed_rank;

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_significance", &args);
    let n_splits = args.splits;
    println!(
        "== Significance test (Wilcoxon signed-rank, {n_splits} splits, seed {}) ==",
        args.seed
    );

    // metric x scenario x split value arrays for both methods.
    const METRICS: [&str; 4] = ["HR@10", "MRR@10", "NDCG@10", "AUC"];
    let mut ours = vec![vec![Vec::new(); 4]; ScenarioKind::ALL.len()];
    let mut theirs = vec![vec![Vec::new(); 4]; ScenarioKind::ALL.len()];

    for split in 0..n_splits {
        let split_seed = args.seed.wrapping_add(split as u64 * 97);
        let world = world_by_name(if args.fast { "tiny" } else { "cds" }, split_seed);
        let scenarios = build_scenarios(&world, split_seed);

        // The test needs 2 x n_splits full fits; reduced (fast) training
        // schedules keep that tractable on one CPU core. The split-to-split
        // variance the test measures dominates the schedule difference.
        let mut cfg = MetaDpaConfig::fast();
        cfg.seed = split_seed;
        let mut dpa = MetaDpa::new(cfg);
        let dpa_results = run_method_on_world(&mut dpa, &world, &scenarios, &[10]);

        let mut melu = Melu::new(MeluConfig::preset(true), split_seed);
        let melu_results = run_method_on_world(&mut melu, &world, &scenarios, &[10]);

        for (s_idx, _) in ScenarioKind::ALL.iter().enumerate() {
            let a = dpa_results[s_idx].summary();
            let b = melu_results[s_idx].summary();
            for (m_idx, (va, vb)) in
                [(a.hr, b.hr), (a.mrr, b.mrr), (a.ndcg, b.ndcg), (a.auc, b.auc)].iter().enumerate()
            {
                ours[s_idx][m_idx].push(*va as f64);
                theirs[s_idx][m_idx].push(*vb as f64);
            }
        }
        metadpa_obs::event!("significance.split_done", "split" => split + 1, "of" => n_splits);
    }

    let mut table = TextTable::new(&["Scenario", "Metric", "W+", "W-", "p-value", "significant"]);
    for (s_idx, kind) in ScenarioKind::ALL.iter().enumerate() {
        for (m_idx, metric) in METRICS.iter().enumerate() {
            let out = wilcoxon_signed_rank(&ours[s_idx][m_idx], &theirs[s_idx][m_idx]);
            table.row(vec![
                kind.label().to_string(),
                metric.to_string(),
                format!("{:.1}", out.w_plus),
                format!("{:.1}", out.w_minus),
                format!("{:.2e}", out.p_value),
                if out.significant(0.05) { "yes".into() } else { "no".into() },
            ]);
        }
    }
    println!("\nMetaDPA vs MeLU, one-sided (H1: MetaDPA better):\n{}", table.render());
    println!(
        "Paper shapes to check: p < 0.05 across metrics and scenarios (the paper\n\
         reports p-values around 1e-7 with n = 30)."
    );
}

//! Figs. 3-4: NDCG@k curves for k = 1..10, all methods, all scenarios,
//! on Books (Fig. 3) and CDs (Fig. 4).
//!
//! The harness scores each evaluation instance once and reads the curve
//! off the same ranking, exactly as the paper's figures sweep k.

use metadpa_baselines::full_roster;
use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_roster_on_world, world_by_name};
use metadpa_bench::table::TextTable;
use metadpa_data::splits::ScenarioKind;

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_figs_3_4", &args);
    let ks: Vec<usize> = (1..=10).collect();
    println!("== Figs. 3-4: NDCG@k curves (seed {}, fast={}) ==", args.seed, args.fast);

    let targets: &[(&str, &str)] = if args.fast {
        &[("tiny", "Fig. 3/4 (smoke)")]
    } else {
        &[("books", "Fig. 3"), ("cds", "Fig. 4")]
    };
    for &(target, figure) in targets {
        let world = world_by_name(target, args.seed);
        let scenarios = build_scenarios(&world, args.seed);
        let mut roster = full_roster(args.seed, args.fast);
        let results = run_roster_on_world(&mut roster, &world, &scenarios, &ks);

        println!("\n--- {figure}: target {} ---", world.target.name);
        for (s_idx, kind) in ScenarioKind::ALL.iter().enumerate() {
            let mut header: Vec<String> = vec!["Method".to_string()];
            header.extend(ks.iter().map(|k| format!("N@{k}")));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = TextTable::new(&header_refs);
            for per_method in &results {
                let mut row = vec![per_method[s_idx].method.clone()];
                row.extend(per_method[s_idx].at_k.iter().map(|s| format!("{:.4}", s.ndcg)));
                table.row(row);
            }
            println!("\n{} NDCG@k:", kind.label());
            println!("{}", table.render());
        }
    }
    println!(
        "Paper shapes to check: every curve rises monotonically in k; MetaDPA's curve\n\
         dominates the baselines across the k range in each scenario."
    );
}

//! `serve-loadgen` — loopback load generator for the inference server.
//!
//! Builds a serving artifact in-process (realistic tiny-world shapes, no
//! lengthy fit — throughput does not depend on the weights), starts the
//! HTTP server on an ephemeral port, and hammers it from N client
//! threads with a seeded 80/20 mix of warm (`user_id`) and cold
//! (`content`) `/v1/recommend` requests over real TCP. Reports
//! throughput and exact latency percentiles, and optionally writes a
//! `metadpa-bench/v2` BENCH file (`--bench-out`) that `obs-report check`
//! can gate against a baseline.
//!
//! With `--trace-out PATH` the server traces every request to a rotating
//! JSONL log (see `obs-report tail` / `check-trace`), and each BENCH block
//! additionally carries the server's own windowed p99 for its state
//! (`server_p99_ns`, scraped from `/metrics` after the run) next to the
//! client-side percentiles. Without the flag observability stays off and
//! the hot path keeps its zero-allocation budget; `server_p99_ns` is then
//! recorded as 0.
//!
//! With `--feedback-frac F` (0..1) that fraction of each client's
//! requests become seeded `POST /v1/feedback` events instead, written to
//! the log at `--feedback-log PATH` (required when the fraction is
//! nonzero) and consumed live by a background `FeedbackAdapter` that
//! graduates users past `--feedback-threshold` events (default 3). The
//! run fails if the adapter cannot drain the log, or if any graduation
//! errored.
//!
//! ```text
//! serve-loadgen [--seed N] [--duration-ms N] [--clients N] [--workers N]
//!               [--k N] [--min-rps N] [--bench-out PATH] [--trace-out PATH]
//!               [--feedback-frac F] [--feedback-log PATH] [--feedback-threshold N]
//! ```
//!
//! Exits nonzero when any request fails or throughput lands under
//! `--min-rps` (default 0 = no gate).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use metadpa_bench::baseline::bench_report;
use metadpa_core::artifact::artifact_from_learner;
use metadpa_core::augmentation::DiversityReport;
use metadpa_core::{MetaDpaConfig, MetaLearner};
use metadpa_data::generator::generate_world;
use metadpa_data::presets::tiny_world;
use metadpa_feedback::{AdapterConfig, FeedbackAdapter, FeedbackLog, GraduationConfig};
use metadpa_obs::report::BenchBlock;
use metadpa_serve::http::{serve, ServerConfig};
use metadpa_serve::{router_with_feedback, Engine};
use metadpa_tensor::SeededRng;

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag_opt(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// SplitMix64: a tiny per-client deterministic stream, independent of the
/// tensor crate's RNG so traffic is stable across model changes.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn build_engine(seed: u64) -> Arc<Engine> {
    let world = generate_world(&tiny_world(seed));
    let mut pref = MetaDpaConfig::fast().preference;
    pref.content_dim = world.target.user_content.cols();
    let maml = MetaDpaConfig::fast().maml;
    let mut rng = SeededRng::new(seed);
    let mut learner = MetaLearner::new(pref, maml, &mut rng);
    let artifact = artifact_from_learner(
        &mut learner,
        "loadgen",
        "loadgen".into(),
        world.fingerprint_hex(),
        DiversityReport::default(),
        world.target.user_content.clone(),
        world.target.item_content.clone(),
        // A real run-ledger key: the feedback log stamps it on every
        // record, and `obs-report check-feedback` joins on it.
        metadpa_obs::run::mint(seed, metadpa_obs::run::fingerprint(b"serve-loadgen")).to_string(),
    );
    Arc::new(Engine::new(artifact.into_recommender().expect("loadgen artifact is valid")))
}

/// One loopback request; returns the HTTP status (0 on transport error).
fn post(addr: SocketAddr, path: &str, body: &str) -> u16 {
    let Ok(mut s) = TcpStream::connect(addr) else { return 0 };
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if s.write_all(raw.as_bytes()).is_err() {
        return 0;
    }
    let mut out = String::new();
    if s.read_to_string(&mut out).is_err() {
        return 0;
    }
    out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0)
}

#[derive(Default)]
struct ClientStats {
    warm_ns: Vec<u64>,
    cold_ns: Vec<u64>,
    feedback_ok: u64,
    failures: u64,
}

struct ClientCfg {
    n_users: usize,
    n_items: usize,
    content_dim: usize,
    k: usize,
    feedback_frac: f64,
}

fn run_client(addr: SocketAddr, seed: u64, deadline: Instant, cfg: &ClientCfg) -> ClientStats {
    let mut rng = Mix(seed);
    let mut stats = ClientStats::default();
    while Instant::now() < deadline {
        // Feedback events (when mixed in) replace a slice of the regular
        // traffic; the remainder keeps the 80/20 warm/cold recommend mix.
        if rng.unit() < cfg.feedback_frac {
            let user = (rng.next() as usize) % cfg.n_users;
            let item = (rng.next() as usize) % cfg.n_items;
            let label = (rng.next() % 2) as f32;
            let body = format!(r#"{{"user_id":{user},"item_id":{item},"label":{label:.1}}}"#);
            if post(addr, "/v1/feedback", &body) == 200 {
                stats.feedback_ok += 1;
            } else {
                stats.failures += 1;
            }
            continue;
        }
        let warm = rng.unit() < 0.8;
        let body = if warm {
            let user = (rng.next() as usize) % cfg.n_users;
            format!(r#"{{"user_id":{user},"k":{k}}}"#, k = cfg.k)
        } else {
            let content: Vec<String> =
                (0..cfg.content_dim).map(|_| format!("{:.4}", rng.unit() * 2.0 - 1.0)).collect();
            format!(r#"{{"content":[{}],"k":{k}}}"#, content.join(","), k = cfg.k)
        };
        let start = Instant::now();
        let status = post(addr, "/v1/recommend", &body);
        let elapsed = start.elapsed().as_nanos() as u64;
        if status == 200 {
            if warm {
                stats.warm_ns.push(elapsed);
            } else {
                stats.cold_ns.push(elapsed);
            }
        } else {
            stats.failures += 1;
        }
    }
    stats
}

/// Exact quantile of a sorted latency vector (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn block_from(name: &str, mut ns: Vec<u64>, allocs_per_req: u64, bytes_per_req: u64) -> BenchBlock {
    ns.sort_unstable();
    let mean = if ns.is_empty() { 0.0 } else { ns.iter().sum::<u64>() as f64 / ns.len() as f64 };
    BenchBlock {
        name: name.to_string(),
        iters: ns.len() as u64,
        p50_ns: quantile(&ns, 0.5),
        p90_ns: quantile(&ns, 0.9),
        mean_ns: mean,
        flops: 0,
        alloc_count: allocs_per_req,
        alloc_bytes: bytes_per_req,
        server_p99_ns: 0,
    }
}

/// One loopback `GET /metrics`; returns the plain-text body ("" on error).
fn scrape_metrics(addr: SocketAddr) -> String {
    let Ok(mut s) = TcpStream::connect(addr) else { return String::new() };
    if s.write_all(b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\nContent-Length: 0\r\n\r\n").is_err()
    {
        return String::new();
    }
    let mut out = String::new();
    if s.read_to_string(&mut out).is_err() {
        return String::new();
    }
    out.split_once("\r\n\r\n").map(|(_, body)| body.to_string()).unwrap_or_default()
}

/// Value of a `name value` line in a `/metrics` body.
fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some(name) {
            return None;
        }
        tokens.next()?.parse().ok()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = flag(&args, "--seed", 7);
    let duration_ms: u64 = flag(&args, "--duration-ms", 2000);
    let clients: usize = flag(&args, "--clients", 4);
    let workers: usize = flag(&args, "--workers", 4);
    let k: usize = flag(&args, "--k", 10);
    let min_rps: f64 = flag(&args, "--min-rps", 0.0);
    let bench_out = flag_opt(&args, "--bench-out");
    let trace_out = flag_opt(&args, "--trace-out");
    let feedback_frac: f64 = flag(&args, "--feedback-frac", 0.0);
    let feedback_log_path = flag_opt(&args, "--feedback-log");
    let feedback_threshold: usize = flag(&args, "--feedback-threshold", 3);
    if feedback_frac > 0.0 && feedback_log_path.is_none() {
        eprintln!("serve-loadgen: --feedback-frac needs --feedback-log PATH");
        return ExitCode::from(2);
    }

    if let Some(path) = &trace_out {
        use metadpa_obs::recorder::RotatingFileRecorder;
        match RotatingFileRecorder::create(path, RotatingFileRecorder::DEFAULT_MAX_BYTES) {
            Ok(rec) => {
                eprintln!("tracing requests to {path}");
                metadpa_obs::enable(Arc::new(rec));
            }
            Err(e) => {
                eprintln!("serve-loadgen: --trace-out {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("building loadgen engine (seed {seed})...");
    let engine = build_engine(seed);
    let (n_users, n_items, content_dim) =
        (engine.n_users(), engine.n_items(), engine.content_dim());
    let feedback_log = match &feedback_log_path {
        None => None,
        Some(path) => {
            use metadpa_obs::recorder::RotatingFileRecorder;
            let run_id = engine.meta().run_id.clone();
            match FeedbackLog::create(path, &run_id, RotatingFileRecorder::DEFAULT_MAX_BYTES) {
                Ok(log) => Some(Arc::new(log)),
                Err(e) => {
                    eprintln!("serve-loadgen: --feedback-log {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let adapter = feedback_log.as_ref().map(|log| {
        let cfg = AdapterConfig {
            graduation: GraduationConfig::with_threshold(feedback_threshold),
            poll_interval: Duration::from_millis(5),
        };
        FeedbackAdapter::spawn(log.path(), cfg, Arc::clone(&engine) as _)
    });
    let server = match serve(
        ServerConfig { workers, ..ServerConfig::default() },
        router_with_feedback(Arc::clone(&engine), feedback_log.clone()),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-loadgen: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    eprintln!(
        "loadgen: {clients} clients x {duration_ms}ms against http://{addr} \
         ({workers} workers, {n_users} users, k={k}, 80% warm / 20% cold, \
         feedback {:.0}%)",
        feedback_frac * 100.0
    );

    // Allocations per request, measured process-wide over the load window
    // by the CountingAlloc global allocator. Includes the in-process
    // clients' request formatting — a deliberately pessimistic, but
    // stable, per-request budget.
    metadpa_obs::alloc::enable_profiling();
    let alloc_before = metadpa_obs::alloc::snapshot();
    let started = Instant::now();
    let deadline = started + Duration::from_millis(duration_ms);
    let mut joins = Vec::with_capacity(clients);
    let cfg = Arc::new(ClientCfg { n_users, n_items, content_dim, k, feedback_frac });
    for c in 0..clients {
        let client_seed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(c as u64);
        let cfg = Arc::clone(&cfg);
        joins.push(std::thread::spawn(move || run_client(addr, client_seed, deadline, &cfg)));
    }
    let mut warm_ns: Vec<u64> = Vec::new();
    let mut cold_ns: Vec<u64> = Vec::new();
    let mut feedback_ok = 0u64;
    let mut failures = 0u64;
    for j in joins {
        let s = j.join().expect("client thread");
        warm_ns.extend(s.warm_ns);
        cold_ns.extend(s.cold_ns);
        feedback_ok += s.feedback_ok;
        failures += s.failures;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let alloc_after = metadpa_obs::alloc::snapshot();
    // Drain the feedback pipeline before scraping: the adapter must have
    // consumed every appended event so graduation counters are final.
    let mut feedback_drained = true;
    if let (Some(log), Some(adapter)) = (&feedback_log, &adapter) {
        log.flush();
        feedback_drained = adapter.wait_for_seq(log.appended(), Duration::from_secs(15));
    }
    // Scrape the server's own rolling-window percentiles before it goes
    // away; only populated when tracing enabled the metrics registry.
    let metrics_body = scrape_metrics(addr);
    server.shutdown();
    let adapter_stats = adapter.map(FeedbackAdapter::stop);

    let total = (warm_ns.len() + cold_ns.len()) as u64;
    let requests = (total + feedback_ok + failures).max(1);
    let allocs_per_req =
        alloc_after.alloc_count.saturating_sub(alloc_before.alloc_count) / requests;
    let bytes_per_req = alloc_after.alloc_bytes.saturating_sub(alloc_before.alloc_bytes) / requests;
    let rps = total as f64 / elapsed;
    let mut warm_block = block_from("serve.recommend.warm", warm_ns, allocs_per_req, bytes_per_req);
    let mut cold_block = block_from("serve.recommend.cold", cold_ns, allocs_per_req, bytes_per_req);
    // The windows are in microseconds; BENCH blocks carry nanoseconds.
    warm_block.server_p99_ns = metric_value(&metrics_body, "serve_window_recommend_warm_us_p99")
        .map_or(0, |us| (us * 1000.0) as u64);
    cold_block.server_p99_ns = metric_value(&metrics_body, "serve_window_recommend_cold_us_p99")
        .map_or(0, |us| (us * 1000.0) as u64);
    eprintln!(
        "loadgen: {total} ok ({failures} failed) in {elapsed:.2}s = {rps:.0} req/s\n\
         \x20 warm: n={} p50={}us p90={}us server-window-p99={}us\n\
         \x20 cold: n={} p50={}us p90={}us server-window-p99={}us\n\
         \x20 allocs/request {allocs_per_req} ({bytes_per_req} B, process-wide incl. clients)",
        warm_block.iters,
        warm_block.p50_ns / 1000,
        warm_block.p90_ns / 1000,
        warm_block.server_p99_ns / 1000,
        cold_block.iters,
        cold_block.p50_ns / 1000,
        cold_block.p90_ns / 1000,
        cold_block.server_p99_ns / 1000,
    );

    if let Some(stats) = &adapter_stats {
        eprintln!(
            "\x20 feedback: {feedback_ok} accepted, {} consumed (last seq {}), \
             {} graduations, {} refreshes, {} invalidations, {} adapt errors",
            stats.processed(),
            stats.last_seq(),
            stats.graduations(),
            stats.refreshes(),
            stats.invalidations(),
            stats.adapt_errors(),
        );
        if !feedback_drained {
            eprintln!("serve-loadgen: FAILED: adapter did not drain the feedback log in 15s");
            return ExitCode::FAILURE;
        }
        if stats.adapt_errors() > 0 {
            eprintln!("serve-loadgen: FAILED: {} graduation(s) errored", stats.adapt_errors());
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = bench_out {
        let mut report = bench_report("serve.loadgen", vec![warm_block, cold_block]);
        report.requests = total + failures;
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("serve-loadgen: writing {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} block(s) to {path}", report.blocks.len());
    }
    if trace_out.is_some() {
        // Stamp the trace log with a final metrics snapshot (windowed
        // p99s, drift gauges) so `obs-report check-trace` can verify the
        // run without the live server.
        metadpa_obs::emit_metrics_snapshot();
        metadpa_obs::flush();
    }
    if failures > 0 {
        eprintln!("serve-loadgen: FAILED: {failures} requests did not return 200");
        return ExitCode::FAILURE;
    }
    if min_rps > 0.0 && rps < min_rps {
        eprintln!("serve-loadgen: FAILED: {rps:.0} req/s under the {min_rps:.0} req/s floor");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Extension experiment: augmentation strategies head-to-head.
//!
//! The paper motivates MetaDPA with meta-augmentation (Rajendran et al.):
//! adding label noise prevents meta-overfitting, but unstructured noise
//! carries no preference information. This experiment makes that argument
//! quantitative: the *same* meta-learner is trained with
//!
//! * no augmentation (`Meta-NoAug`),
//! * label-noise augmentation (`Meta-NoiseAug`, k = 3 noisy copies),
//! * diverse preference augmentation (`MetaDPA`, k = 3 source domains),
//!
//! and evaluated on all four scenarios of the CDs world.

use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_method_on_world, world_by_name};
use metadpa_bench::table::TextTable;
use metadpa_core::noise_aug::NoiseAugConfig;
use metadpa_core::pipeline::{AugmentationStrategy, MetaDpa, MetaDpaConfig};
use metadpa_data::splits::ScenarioKind;

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_augmentation_strategies", &args);
    println!(
        "== Extension: augmentation strategies on CDs (seed {}, fast={}) ==",
        args.seed, args.fast
    );
    let world = world_by_name(if args.fast { "tiny" } else { "cds" }, args.seed);
    let scenarios = build_scenarios(&world, args.seed);

    let strategies = [
        AugmentationStrategy::None,
        AugmentationStrategy::LabelNoise(NoiseAugConfig::default()),
        AugmentationStrategy::DiversePreference,
    ];

    let mut table =
        TextTable::new(&["Strategy", "C-U N@10", "C-I N@10", "C-UI N@10", "Warm N@10", "mean"]);
    for strategy in strategies {
        let mut cfg = if args.fast { MetaDpaConfig::fast() } else { MetaDpaConfig::default() };
        cfg.seed = args.seed;
        cfg.augmentation = strategy;
        let mut model = MetaDpa::new(cfg);
        let results = run_method_on_world(&mut model, &world, &scenarios, &[10]);
        let idx_of = |k: ScenarioKind| {
            ScenarioKind::ALL.iter().position(|&x| x == k).expect("scenario present")
        };
        let ndcg = |k: ScenarioKind| results[idx_of(k)].summary().ndcg;
        let row = [
            ndcg(ScenarioKind::ColdUser),
            ndcg(ScenarioKind::ColdItem),
            ndcg(ScenarioKind::ColdUserItem),
            ndcg(ScenarioKind::Warm),
        ];
        table.row(vec![
            results[0].method.clone(),
            format!("{:.4}", row[0]),
            format!("{:.4}", row[1]),
            format!("{:.4}", row[2]),
            format!("{:.4}", row[3]),
            format!("{:.4}", row.iter().sum::<f32>() / 4.0),
        ]);
        metadpa_obs::event!("augstrat.strategy_done", "strategy" => results[0].method.as_str());
    }
    println!("\n{}", table.render());
    println!(
        "Expected (the paper's §I argument): structured diversity (MetaDPA) beats\n\
         unstructured label noise, which in turn regularizes relative to no\n\
         augmentation under cold-start."
    );
}

//! Extension experiment: Table III's roster plus the classical anchors
//! CMF (Singh & Gordon 2008) and CDL (Wang et al. 2015) from the paper's
//! Related Work, on the CDs world.
//!
//! These two systems bound the modern families from below: CMF is linear
//! multi-source CF (expect: decent warm, chance-level C-I/C-UI), CDL is
//! classical content-coupled CF (expect: survives cold items through its
//! content encoder but trails the deep content towers).

use metadpa_baselines::extended_roster;
use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_roster_on_world, world_by_name};
use metadpa_bench::table::{best_two, mark_value, TextTable};
use metadpa_data::splits::ScenarioKind;

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_extended_roster", &args);
    println!(
        "== Extension: extended roster (+CMF, +CDL) on CDs (seed {}, fast={}) ==",
        args.seed, args.fast
    );
    let world = world_by_name(if args.fast { "tiny" } else { "cds" }, args.seed);
    let scenarios = build_scenarios(&world, args.seed);
    let mut roster = extended_roster(args.seed, args.fast);
    let results = run_roster_on_world(&mut roster, &world, &scenarios, &[10]);

    for (s_idx, kind) in ScenarioKind::ALL.iter().enumerate() {
        let mut table = TextTable::new(&["Method", "HR@10", "NDCG@10", "AUC"]);
        let hrs: Vec<f32> = results.iter().map(|m| m[s_idx].summary().hr).collect();
        let ndcgs: Vec<f32> = results.iter().map(|m| m[s_idx].summary().ndcg).collect();
        let aucs: Vec<f32> = results.iter().map(|m| m[s_idx].summary().auc).collect();
        let (bh, sh) = best_two(&hrs);
        let (bn, sn) = best_two(&ndcgs);
        let (ba, sa) = best_two(&aucs);
        for (m_idx, per_method) in results.iter().enumerate() {
            table.row(vec![
                per_method[s_idx].method.clone(),
                mark_value(hrs[m_idx], bh, sh),
                mark_value(ndcgs[m_idx], bn, sn),
                mark_value(aucs[m_idx], ba, sa),
            ]);
        }
        println!("\n{}:", kind.label());
        println!("{}", table.render());
    }
}

//! Fig. 5: effectiveness of the ME and MDI constraints (ablation, on CDs).
//!
//! Four variants of the adaptation objective are compared across all four
//! scenarios: full MetaDPA, MetaDPA-ME (ME only), MetaDPA-MDI (MDI only),
//! and — beyond the paper — MetaDPA-Plain (no constraints), plus MeLU as
//! the strongest non-augmented reference the paper plots alongside.
//!
//! Expected shape (paper §V-E): Full > MdiOnly > MeOnly, with every
//! variant still ahead of MeLU; each variant's augmentation diversity is
//! also reported, since the ablation's narrative is about diversity vs.
//! meaningfulness of the generated ratings.

use metadpa_baselines::melu::{Melu, MeluConfig};
use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_method_on_world, world_by_name};
use metadpa_bench::table::TextTable;
use metadpa_core::pipeline::{MetaDpa, MetaDpaConfig, Variant};
use metadpa_data::splits::ScenarioKind;

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_fig5_ablation", &args);
    println!("== Fig. 5: ME / MDI ablation on CDs (seed {}, fast={}) ==", args.seed, args.fast);

    let world = world_by_name(if args.fast { "tiny" } else { "cds" }, args.seed);
    let scenarios = build_scenarios(&world, args.seed);

    let variants = [Variant::Full, Variant::MdiOnly, Variant::MeOnly, Variant::Plain];
    let mut rows: Vec<(String, Vec<f32>, Option<f32>)> = Vec::new();

    for variant in variants {
        let mut cfg = if args.fast { MetaDpaConfig::fast() } else { MetaDpaConfig::default() };
        cfg.variant = variant;
        cfg.seed = args.seed;
        let mut model = MetaDpa::new(cfg);
        let results = run_method_on_world(&mut model, &world, &scenarios, &[10]);
        let ndcgs: Vec<f32> = results.iter().map(|r| r.summary().ndcg).collect();
        let diversity = model.diversity().mean_pairwise_distance;
        metadpa_obs::event!(
            "fig5.variant_done",
            "variant" => variant.label(),
            "diversity" => diversity as f64,
            "confidence" => model.diversity().mean_confidence as f64,
        );
        rows.push((variant.label().to_string(), ndcgs, Some(diversity)));
    }

    // MeLU reference line.
    let mut melu = Melu::new(MeluConfig::preset(args.fast), args.seed);
    let melu_results = run_method_on_world(&mut melu, &world, &scenarios, &[10]);
    rows.push(("MeLU".to_string(), melu_results.iter().map(|r| r.summary().ndcg).collect(), None));

    let mut table =
        TextTable::new(&["Variant", "C-U N@10", "C-I N@10", "C-UI N@10", "Warm N@10", "diversity"]);
    for (name, ndcgs, diversity) in &rows {
        // ScenarioKind::ALL order is Warm, C-U, C-I, C-UI; reorder columns
        // to the paper's presentation (cold first).
        let idx_of = |k: ScenarioKind| {
            ScenarioKind::ALL.iter().position(|&x| x == k).expect("scenario present")
        };
        table.row(vec![
            name.clone(),
            format!("{:.4}", ndcgs[idx_of(ScenarioKind::ColdUser)]),
            format!("{:.4}", ndcgs[idx_of(ScenarioKind::ColdItem)]),
            format!("{:.4}", ndcgs[idx_of(ScenarioKind::ColdUserItem)]),
            format!("{:.4}", ndcgs[idx_of(ScenarioKind::Warm)]),
            diversity.map_or("-".to_string(), |d| format!("{d:.4}")),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "Paper shapes to check: both single-constraint variants fall below the full\n\
         model; MetaDPA-ME (diverse but less meaningful ratings) falls furthest;\n\
         all variants stay ahead of MeLU."
    );
}

//! Fig. 6: training time per block vs. data size (scalability, RQ3).
//!
//! The paper subsamples the Books catalogue at 10%, 20%, ..., 100% and
//! reports the per-epoch training cost of each pipeline block on a GPU.
//! We run the same sweep on CPU. The claim under test is *shape*, not
//! absolute speed (§IV-D): block 1 (Dual-CVAE adaptation) scales linearly
//! with the catalogue size because the encoder/decoder widths track the
//! item count; blocks 2 (augmentation) and 3 (preference meta-learning)
//! are constant in the catalogue because their networks only touch
//! fixed-width content vectors. (Per-user costs are held comparable by
//! scaling users with items, as the paper's subsampling does.)
//!
//! `--bench-out BENCH_<name>.json` additionally writes the per-fraction
//! per-block timings as a BENCH perf baseline for `obs-report check`.

use std::time::Duration;

use metadpa_bench::args::ExpArgs;
use metadpa_bench::table::TextTable;
use metadpa_core::eval::Recommender;
use metadpa_core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa_data::generator::generate_world;
use metadpa_data::presets::books_world_items_scaled;
use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
use metadpa_obs::report::BenchBlock;

fn per_unit(d: Duration, epochs: usize) -> f64 {
    d.as_secs_f64() * 1e3 / epochs.max(1) as f64
}

/// One BENCH block from a single measured duration. The sweep runs each
/// fraction once, so p50 == p90 == the measurement; `iters` records the
/// epoch count the per-epoch figure was averaged over.
fn bench_block(name: String, ms: f64, epochs: usize) -> BenchBlock {
    let ns = (ms * 1e6) as u64;
    BenchBlock {
        name,
        iters: epochs as u64,
        p50_ns: ns,
        p90_ns: ns,
        mean_ns: ms * 1e6,
        flops: 0,
        alloc_count: 0,
        alloc_bytes: 0,
        server_p99_ns: 0,
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_fig6_scalability", &args);
    println!("== Fig. 6: per-block training time vs data size (seed {}) ==", args.seed);

    let fractions: Vec<f32> =
        if args.fast { vec![0.2, 0.6, 1.0] } else { (1..=10).map(|i| i as f32 / 10.0).collect() };

    let mut table = TextTable::new(&[
        "data size",
        "#items",
        "#users",
        "Block-1 ms/epoch",
        "Block-2 ms",
        "Block-3 ms/epoch",
    ]);
    let mut block1 = Vec::new();
    let mut sizes = Vec::new();
    let mut bench_blocks = Vec::new();

    for &f in &fractions {
        let mut world_cfg = books_world_items_scaled(args.seed, f);
        if args.fast {
            world_cfg.target.n_users /= 2;
        }
        let world = generate_world(&world_cfg);
        let splitter = Splitter::new(&world.target, SplitConfig::default());
        let warm = splitter.scenario(ScenarioKind::Warm);

        let mut cfg = if args.fast { MetaDpaConfig::fast() } else { MetaDpaConfig::default() };
        cfg.seed = args.seed;
        // The reported quantity is ms *per epoch*, so short schedules give
        // identical per-epoch numbers at a fraction of the sweep cost.
        cfg.adapter_train.epochs = 6;
        cfg.maml.epochs = 3;
        let adapter_epochs = cfg.adapter_train.epochs;
        let maml_epochs = cfg.maml.epochs;
        let mut model = MetaDpa::new(cfg);
        model.fit(&world, &warm);
        let t = model.timings();

        let b1 = per_unit(t.adaptation, adapter_epochs);
        let b2 = t.augmentation.as_secs_f64() * 1e3;
        let b3 = per_unit(t.meta_learning, maml_epochs);
        table.row(vec![
            format!("{:.0}%", f * 100.0),
            world.target.n_items().to_string(),
            world.target.n_users().to_string(),
            format!("{b1:.1}"),
            format!("{b2:.1}"),
            format!("{b3:.1}"),
        ]);
        block1.push(b1);
        sizes.push(world.target.n_items() as f64);
        let pct = (f * 100.0) as u32;
        bench_blocks.push(bench_block(format!("fig6.block1_epoch/{pct}pct"), b1, adapter_epochs));
        bench_blocks.push(bench_block(format!("fig6.block2_augment/{pct}pct"), b2, 1));
        bench_blocks.push(bench_block(format!("fig6.block3_epoch/{pct}pct"), b3, maml_epochs));
        metadpa_obs::event!("fig6.fraction_done", "fraction" => f);
    }

    if let Some(path) = &args.bench_out {
        metadpa_bench::baseline::write_bench_report(path, "exp_fig6_scalability", bench_blocks)
            .unwrap_or_else(|e| panic!("--bench-out {path}: {e}"));
    }

    println!("\n{}", table.render());

    // Linearity check on block 1: correlation between size and time.
    if block1.len() >= 3 {
        let xs: Vec<f32> = sizes.iter().map(|&v| v as f32).collect();
        let ys: Vec<f32> = block1.iter().map(|&v| v as f32).collect();
        let corr = metadpa_tensor::stats::pearson(&xs, &ys);
        println!(
            "Block-1 time vs catalogue size: Pearson r = {corr:.3} \
             (paper claim: linear; expect r close to 1)."
        );
    }
    println!(
        "Paper shapes to check: Block-1 grows with data size; Blocks 2-3 stay flat\n\
         relative to catalogue growth (their cost tracks user count x content width)."
    );
}

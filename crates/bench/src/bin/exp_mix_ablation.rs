//! Extension experiment (beyond the paper): the original/augmented task
//! mix ratio in meta-training.
//!
//! Eq. 9-10 of the paper meta-trains on one copy of each original task
//! plus k augmented copies, so with k = 3 sources only a quarter of the
//! training tasks carry true labels. This ablation sweeps how many copies
//! of the original task enter the mix, quantifying the trade-off the
//! Table III warm-start deviation suggests: augmented tasks regularize
//! cold-start adaptation but dilute abundant warm signal.

use metadpa_bench::args::ExpArgs;
use metadpa_bench::harness::{build_scenarios, run_method_on_world, world_by_name};
use metadpa_bench::table::TextTable;
use metadpa_core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa_data::splits::ScenarioKind;

fn main() {
    let args = ExpArgs::from_env();
    let _obs = metadpa_bench::obs_init("exp_mix_ablation", &args);
    println!(
        "== Extension: original:augmented mix-ratio ablation on CDs (seed {}, fast={}) ==",
        args.seed, args.fast
    );
    let world = world_by_name(if args.fast { "tiny" } else { "cds" }, args.seed);
    let scenarios = build_scenarios(&world, args.seed);

    let mut table =
        TextTable::new(&["orig copies", "C-U N@10", "C-I N@10", "C-UI N@10", "Warm N@10", "mean"]);
    for replication in [1usize, 2, 3, 6] {
        let mut cfg = if args.fast { MetaDpaConfig::fast() } else { MetaDpaConfig::default() };
        cfg.seed = args.seed;
        cfg.original_replication = replication;
        let mut model = MetaDpa::new(cfg);
        let results = run_method_on_world(&mut model, &world, &scenarios, &[10]);
        let idx_of = |k: ScenarioKind| {
            ScenarioKind::ALL.iter().position(|&x| x == k).expect("scenario present")
        };
        let ndcg = |k: ScenarioKind| results[idx_of(k)].summary().ndcg;
        let row = [
            ndcg(ScenarioKind::ColdUser),
            ndcg(ScenarioKind::ColdItem),
            ndcg(ScenarioKind::ColdUserItem),
            ndcg(ScenarioKind::Warm),
        ];
        table.row(vec![
            format!("{replication}x"),
            format!("{:.4}", row[0]),
            format!("{:.4}", row[1]),
            format!("{:.4}", row[2]),
            format!("{:.4}", row[3]),
            format!("{:.4}", row.iter().sum::<f32>() / 4.0),
        ]);
        metadpa_obs::event!("mix.replication_done", "replication" => replication);
    }
    println!("\n{}", table.render());
    println!(
        "1x is the paper's Eq. 9-10 mix. Expect warm-start NDCG to rise with more\n\
         original copies while the cold-start columns stay flat or dip slightly."
    );
}

//! Microbenchmarks of the evaluation protocol and the data substrate:
//! metric aggregation over leave-one-out instances (Table III's inner
//! loop), world generation (Tables I-II), and scenario splitting.
//!
//! Hand-rolled `harness = false` binary (no criterion in the offline
//! dependency set); see [`metadpa_bench::microbench`].

use metadpa_bench::microbench;
use metadpa_data::generator::generate_world;
use metadpa_data::presets::{books_world_scaled, tiny_world};
use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
use metadpa_metrics::MetricSummary;
use metadpa_tensor::SeededRng;

/// Metric aggregation: the cost of scoring one evaluation instance across
/// the four metrics (the harness runs this n_users x n_scenarios times).
fn bench_metric_aggregation() {
    let mut rng = SeededRng::new(1);
    let negatives: Vec<f32> = (0..99).map(|_| rng.uniform()).collect();
    microbench::run("metrics_add_instance_99_negatives", 1000, || {
        let mut s = MetricSummary::default();
        s.add_instance(std::hint::black_box(0.73), &negatives, 10);
        std::hint::black_box(s);
    });
}

/// World generation at 20% / 60% / 100% of the Books preset (the Fig. 6
/// sweep's setup cost).
fn bench_world_generation() {
    for pct in [20u32, 60, 100] {
        let cfg = books_world_scaled(7, pct as f32 / 100.0);
        microbench::run(&format!("generate_books_world/{pct}"), 10, || {
            std::hint::black_box(generate_world(&cfg));
        });
    }
}

/// Scenario construction for all four problems on the tiny world.
fn bench_scenario_split() {
    let world = generate_world(&tiny_world(9));
    microbench::run("split_four_scenarios_tiny", 50, || {
        let splitter = Splitter::new(&world.target, SplitConfig::default());
        let out: Vec<_> = ScenarioKind::ALL.iter().map(|&k| splitter.scenario(k)).collect();
        std::hint::black_box(out);
    });
}

fn main() {
    bench_metric_aggregation();
    bench_world_generation();
    bench_scenario_split();
}

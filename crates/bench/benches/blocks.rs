//! Microbenchmarks of the three pipeline blocks (the fine-grained
//! counterpart of Fig. 6): one Dual-CVAE training step at several
//! catalogue sizes (Block 1, expected to scale linearly), one augmentation
//! pass (Block 2), and one MAML task step (Block 3), both expected to be
//! independent of the catalogue size.
//!
//! Hand-rolled `harness = false` binary (no criterion in the offline
//! dependency set); see [`metadpa_bench::microbench`].

use metadpa_bench::microbench;
use metadpa_core::dual_cvae::{DualCvae, DualCvaeConfig};
use metadpa_core::maml::{MamlConfig, MetaLearner};
use metadpa_core::preference::PreferenceConfig;
use metadpa_data::task::Task;
use metadpa_nn::module::zero_grad;
use metadpa_tensor::{Matrix, SeededRng};

const BATCH: usize = 32;
const CONTENT_DIM: usize = 48;

fn make_batch(rng: &mut SeededRng, n_items: usize) -> (Matrix, Matrix, Matrix, Matrix) {
    let r_s = Matrix::from_fn(BATCH, n_items, |_, _| if rng.bernoulli(0.05) { 1.0 } else { 0.0 });
    let r_t = Matrix::from_fn(BATCH, n_items, |_, _| if rng.bernoulli(0.05) { 1.0 } else { 0.0 });
    let x_s = rng.uniform_matrix(BATCH, CONTENT_DIM, 0.0, 0.4);
    let x_t = rng.uniform_matrix(BATCH, CONTENT_DIM, 0.0, 0.4);
    (r_s, r_t, x_s, x_t)
}

/// Block 1: one Dual-CVAE train step; catalogue size is the sweep axis.
fn bench_block1_dual_cvae_step() {
    for n_items in [100usize, 200, 400, 800] {
        let mut rng = SeededRng::new(1);
        let mut dual =
            DualCvae::new(n_items, n_items, CONTENT_DIM, DualCvaeConfig::default(), &mut rng);
        let (r_s, r_t, x_s, x_t) = make_batch(&mut rng, n_items);
        microbench::run(&format!("block1_dual_cvae_step/{n_items}"), 10, || {
            zero_grad(&mut dual);
            std::hint::black_box(dual.train_step(&r_s, &r_t, &x_s, &x_t, &mut rng));
        });
    }
}

/// Block 2: generate diverse ratings from content for a batch of users.
fn bench_block2_augmentation() {
    for n_items in [100usize, 400, 800] {
        let mut rng = SeededRng::new(2);
        let mut dual =
            DualCvae::new(n_items, n_items, CONTENT_DIM, DualCvaeConfig::default(), &mut rng);
        let content = rng.uniform_matrix(64, CONTENT_DIM, 0.0, 0.4);
        microbench::run(&format!("block2_generate_ratings/{n_items}"), 10, || {
            std::hint::black_box(dual.generate_target_ratings(&content));
        });
    }
}

/// Block 3: one full MAML meta-training epoch over a fixed task set —
/// independent of catalogue size by construction (content-width networks).
fn bench_block3_maml_epoch() {
    for n_tasks in [16usize, 64] {
        let mut rng = SeededRng::new(3);
        let uc = rng.uniform_matrix(n_tasks, CONTENT_DIM, 0.0, 0.4);
        let ic = rng.uniform_matrix(200, CONTENT_DIM, 0.0, 0.4);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|u| Task {
                user: u,
                support: (0..8).map(|i| (i * 3 % 200, ((i % 2) as f32))).collect(),
                query: (0..8).map(|i| ((i * 7 + 1) % 200, ((i % 2) as f32))).collect(),
            })
            .collect();
        microbench::run(&format!("block3_maml_epoch/{n_tasks}"), 10, || {
            let mut learner = MetaLearner::new(
                PreferenceConfig { content_dim: CONTENT_DIM, embed_dim: 32, hidden: [48, 24] },
                MamlConfig { epochs: 1, ..MamlConfig::default() },
                &mut rng,
            );
            std::hint::black_box(learner.meta_train(&tasks, &uc, &ic));
        });
    }
}

fn main() {
    bench_block1_dual_cvae_step();
    bench_block2_augmentation();
    bench_block3_maml_epoch();
}

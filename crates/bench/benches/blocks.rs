//! Microbenchmarks of the three pipeline blocks (the fine-grained
//! counterpart of Fig. 6): one Dual-CVAE training step at several
//! catalogue sizes (Block 1, expected to scale linearly), one augmentation
//! pass (Block 2), and one MAML task step (Block 3), both expected to be
//! independent of the catalogue size.
//!
//! Hand-rolled `harness = false` binary (no criterion in the offline
//! dependency set); see [`metadpa_bench::microbench`].
//!
//! Flags (after `cargo bench -p metadpa-bench --bench blocks --`):
//! `--smoke` shrinks the sweep and iteration counts for CI;
//! `--obs-alloc` turns on allocation profiling so allocs/iter is reported;
//! `--bench-out <path>` writes a BENCH perf-baseline JSON for
//! `obs-report check` (see DESIGN.md §6).

use std::sync::Arc;

use metadpa_bench::microbench::{self, BenchResult};
use metadpa_core::dual_cvae::{DualCvae, DualCvaeConfig};
use metadpa_core::maml::{MamlConfig, MetaLearner};
use metadpa_core::preference::PreferenceConfig;
use metadpa_data::task::Task;
use metadpa_nn::module::zero_grad;
use metadpa_tensor::{Matrix, SeededRng};

const BATCH: usize = 32;
const CONTENT_DIM: usize = 48;

struct BenchArgs {
    smoke: bool,
    obs_alloc: bool,
    bench_out: Option<String>,
}

fn parse_args() -> BenchArgs {
    let mut out = BenchArgs { smoke: false, obs_alloc: false, bench_out: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--obs-alloc" => out.obs_alloc = true,
            "--bench-out" => {
                out.bench_out =
                    Some(it.next().unwrap_or_else(|| panic!("--bench-out needs a value")));
            }
            // `cargo bench` appends `--bench` to harness = false targets.
            "--bench" => {}
            other => {
                panic!("unknown flag {other}; supported: --smoke, --obs-alloc, --bench-out <path>")
            }
        }
    }
    out
}

fn make_batch(rng: &mut SeededRng, n_items: usize) -> (Matrix, Matrix, Matrix, Matrix) {
    let r_s = Matrix::from_fn(BATCH, n_items, |_, _| if rng.bernoulli(0.05) { 1.0 } else { 0.0 });
    let r_t = Matrix::from_fn(BATCH, n_items, |_, _| if rng.bernoulli(0.05) { 1.0 } else { 0.0 });
    let x_s = rng.uniform_matrix(BATCH, CONTENT_DIM, 0.0, 0.4);
    let x_t = rng.uniform_matrix(BATCH, CONTENT_DIM, 0.0, 0.4);
    (r_s, r_t, x_s, x_t)
}

/// Block 1: one Dual-CVAE train step; catalogue size is the sweep axis.
fn bench_block1_dual_cvae_step(iters: u64, smoke: bool) -> Vec<BenchResult> {
    let sweep: &[usize] = if smoke { &[100, 200] } else { &[100, 200, 400, 800] };
    let mut results = Vec::new();
    for &n_items in sweep {
        let mut rng = SeededRng::new(1);
        let mut dual =
            DualCvae::new(n_items, n_items, CONTENT_DIM, DualCvaeConfig::default(), &mut rng);
        let (r_s, r_t, x_s, x_t) = make_batch(&mut rng, n_items);
        results.push(microbench::run(&format!("block1_dual_cvae_step/{n_items}"), iters, || {
            zero_grad(&mut dual);
            std::hint::black_box(dual.train_step(&r_s, &r_t, &x_s, &x_t, &mut rng));
        }));
    }
    results
}

/// Block 2: generate diverse ratings from content for a batch of users.
fn bench_block2_augmentation(iters: u64, smoke: bool) -> Vec<BenchResult> {
    let sweep: &[usize] = if smoke { &[100, 400] } else { &[100, 400, 800] };
    let mut results = Vec::new();
    for &n_items in sweep {
        let mut rng = SeededRng::new(2);
        let mut dual =
            DualCvae::new(n_items, n_items, CONTENT_DIM, DualCvaeConfig::default(), &mut rng);
        let content = rng.uniform_matrix(64, CONTENT_DIM, 0.0, 0.4);
        results.push(microbench::run(&format!("block2_generate_ratings/{n_items}"), iters, || {
            std::hint::black_box(dual.generate_target_ratings(&content));
        }));
    }
    results
}

/// Block 3: one full MAML meta-training epoch over a fixed task set —
/// independent of catalogue size by construction (content-width networks).
fn bench_block3_maml_epoch(iters: u64, smoke: bool) -> Vec<BenchResult> {
    let sweep: &[usize] = if smoke { &[16] } else { &[16, 64] };
    let mut results = Vec::new();
    for &n_tasks in sweep {
        let mut rng = SeededRng::new(3);
        let uc = rng.uniform_matrix(n_tasks, CONTENT_DIM, 0.0, 0.4);
        let ic = rng.uniform_matrix(200, CONTENT_DIM, 0.0, 0.4);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|u| Task {
                user: u,
                support: (0..8).map(|i| (i * 3 % 200, ((i % 2) as f32))).collect(),
                query: (0..8).map(|i| ((i * 7 + 1) % 200, ((i % 2) as f32))).collect(),
            })
            .collect();
        results.push(microbench::run(&format!("block3_maml_epoch/{n_tasks}"), iters, || {
            let mut learner = MetaLearner::new(
                PreferenceConfig { content_dim: CONTENT_DIM, embed_dim: 32, hidden: [48, 24] },
                MamlConfig { epochs: 1, ..MamlConfig::default() },
                &mut rng,
            );
            std::hint::black_box(learner.meta_train(&tasks, &uc, &ic));
        }));
    }
    results
}

fn main() {
    let args = parse_args();
    if args.obs_alloc {
        metadpa_obs::alloc::enable_profiling();
    }
    // FLOP counters only advance while observability is enabled; the null
    // recorder gives live counters without any stream or stderr output
    // perturbing the timed loops. Consistently enabled across baseline and
    // current runs, so the (tiny) counter cost cancels in `check`.
    metadpa_obs::enable(Arc::new(metadpa_obs::NullRecorder));

    let iters = if args.smoke { 3 } else { 10 };
    let mut results = bench_block1_dual_cvae_step(iters, args.smoke);
    results.extend(bench_block2_augmentation(iters, args.smoke));
    results.extend(bench_block3_maml_epoch(iters, args.smoke));

    if let Some(path) = &args.bench_out {
        let blocks = results.iter().map(BenchResult::to_bench_block).collect();
        metadpa_bench::baseline::write_bench_report(path, "microbench.blocks", blocks)
            .unwrap_or_else(|e| panic!("--bench-out {path}: {e}"));
    }
}

//! Sparse-path benchmarks: streaming generation memory/throughput and the
//! CSR CVAE-input feed.
//!
//! Three claims from the CSR + streaming-generator work are locked in as
//! BENCH blocks (`benchmarks/BENCH_sparse_baseline.json`, gated by
//! `obs-report check` in CI):
//!
//! 1. **Peak memory** — a full streaming-generation pass never materializes
//!    anything dense of shape `n_users x n_items`. The peak live-bytes
//!    watermark of the pass (CountingAlloc, reported in the
//!    `sparse/stream/generate` block's `alloc_bytes` column) must stay under
//!    `--max-peak-mb` (default 256 MB) — a hard floor enforced everywhere,
//!    since allocation patterns do not depend on host speed. For reference,
//!    the smoke shape's *dense* interaction matrix alone would be 1.6 GB and
//!    the `--full` shape's 400 GB.
//! 2. **Generator throughput** — users/sec of the chunked generator, the
//!    number quoted in the README's scaling walkthrough.
//! 3. **CVAE-input throughput** — rows/sec of the sparse input path the
//!    training loop and server consume: batched `gather_rows_dense_into`
//!    and per-row `row_to_dense_into`. (`spmm_dense_into` is timed and
//!    printed too, but kept out of the gated report — it is memory-
//!    bandwidth-bound and too host-sensitive to gate.)
//!
//! Flags (after `cargo bench -p metadpa-bench --bench sparse --`):
//! `--smoke` shrinks shapes and iteration counts for CI;
//! `--full` runs the 1M-user x 100k-item demonstration pass;
//! `--bench-out <path>` writes a BENCH perf-baseline JSON;
//! `--max-peak-mb <mb>` adjusts the streaming-pass memory cap.

use std::sync::Arc;
use std::time::Instant;

use metadpa_bench::microbench::{self, BenchResult};
use metadpa_data::{DomainConfig, StreamConfig, StreamingDomainGenerator};
use metadpa_obs::report::BenchBlock;
use metadpa_tensor::{CsrMatrix, Matrix, SeededRng};

struct BenchArgs {
    smoke: bool,
    full: bool,
    bench_out: Option<String>,
    max_peak_mb: f64,
}

fn parse_args() -> BenchArgs {
    let mut out = BenchArgs { smoke: false, full: false, bench_out: None, max_peak_mb: 256.0 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--full" => out.full = true,
            "--bench-out" => {
                out.bench_out =
                    Some(it.next().unwrap_or_else(|| panic!("--bench-out needs a value")));
            }
            "--max-peak-mb" => {
                out.max_peak_mb = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--max-peak-mb needs a number"));
            }
            // `cargo bench` appends `--bench` to harness = false targets.
            "--bench" => {}
            other => panic!(
                "unknown flag {other}; supported: --smoke, --full, --bench-out <path>, \
                 --max-peak-mb <mb>"
            ),
        }
    }
    out
}

fn stream_config(n_users: usize, n_items: usize, chunk_users: usize) -> StreamConfig {
    StreamConfig {
        domain: DomainConfig::new("bench", n_users, n_items, 8.0),
        latent_dim: 16,
        content_dim: 48,
        n_topics: 8,
        content_gap: 0.35,
        chunk_users,
        seed: 2024,
    }
}

/// One full streaming-generation pass; returns wall time, emitted users,
/// emitted ratings, and the peak live-bytes watermark of the pass.
fn run_stream_pass(cfg: StreamConfig) -> (std::time::Duration, u64, u64, u64) {
    // Reset so the watermark reflects this pass, not harness setup. Frees
    // of pre-pass allocations clamp at zero, so the watermark is the net
    // new-allocation peak — exactly the "did we materialize something
    // dense" signal this gate wants.
    metadpa_obs::alloc::reset_counters();
    let started = Instant::now();
    let mut gen = StreamingDomainGenerator::new(cfg);
    let mut users = 0u64;
    let mut ratings = 0u64;
    while let Some(chunk) = gen.next_chunk() {
        users += chunk.n_users() as u64;
        ratings += chunk.interactions.nnz() as u64;
        std::hint::black_box(&chunk);
    }
    let peak = metadpa_obs::alloc::snapshot().peak_live_bytes;
    (started.elapsed(), users, ratings, peak)
}

fn main() {
    let args = parse_args();
    metadpa_obs::enable(Arc::new(metadpa_obs::NullRecorder));
    metadpa_obs::alloc::enable_profiling();

    // ------------------------------------------------------------------
    // 1. Streaming generation: wall time + peak live bytes.
    // ------------------------------------------------------------------
    let (n_users, n_items, chunk) = if args.full {
        (1_000_000, 100_000, 8_192)
    } else if args.smoke {
        (20_000, 20_000, 2_048)
    } else {
        (100_000, 50_000, 8_192)
    };
    let (elapsed, users, ratings, peak) = run_stream_pass(stream_config(n_users, n_items, chunk));
    let users_per_sec = users as f64 / elapsed.as_secs_f64();
    let peak_mb = peak as f64 / (1024.0 * 1024.0);
    let dense_gb = n_users as f64 * n_items as f64 * 4.0 / 1e9;
    println!(
        "  stream/generate: {users} users x {n_items} items ({ratings} ratings) in {:.2}s \
         = {users_per_sec:.0} users/s, peak {peak_mb:.1} MB (dense matrix would be {dense_gb:.1} GB)",
        elapsed.as_secs_f64()
    );
    let elapsed_ns = elapsed.as_nanos() as u64;
    let mut blocks = vec![BenchBlock {
        name: format!("sparse/stream/generate/{}", if args.full { "full" } else { "smoke" }),
        iters: 1,
        p50_ns: elapsed_ns,
        p90_ns: elapsed_ns,
        mean_ns: elapsed_ns as f64,
        flops: ratings,
        alloc_count: users,
        alloc_bytes: peak,
        server_p99_ns: 0,
    }];

    // ------------------------------------------------------------------
    // 2. CVAE-input feed: CSR batch gather, row extraction, spmm.
    // ------------------------------------------------------------------
    // One chunk of realistic interactions as the fixture matrix.
    let fixture_users = 8_192;
    let fixture_items = if args.smoke { 20_000 } else { 50_000 };
    let csr: CsrMatrix =
        StreamingDomainGenerator::new(stream_config(fixture_users, fixture_items, fixture_users))
            .next_chunk()
            .expect("fixture chunk")
            .interactions;

    // The input-feed blocks are cheap (sub-ms to tens of ms), so even smoke
    // mode can afford enough iterations for a stable p50 — 3-sample medians
    // of sub-ms cases are too noisy to gate on shared hardware.
    let iters = if args.smoke { 10 } else { 20 };
    let batch = 128usize;
    let batches_per_iter = 64usize;
    let rows_per_iter = (batch * batches_per_iter) as f64;

    let mut ws = Matrix::default();
    let mut cursor = 0usize;
    let gather = microbench::run("sparse/cvae_input/gather128", iters as u64, || {
        for _ in 0..batches_per_iter {
            let rows: Vec<usize> = (0..batch).map(|k| (cursor + k * 31) % fixture_users).collect();
            csr.gather_rows_dense_into(&rows, &mut ws);
            cursor = (cursor + batch) % fixture_users;
            std::hint::black_box(&ws);
        }
    });
    println!(
        "  cvae_input/gather128: {:.0} rows/s into a reused dense workspace",
        rows_per_iter / (gather.mean_ns / 1e9)
    );

    let mut row_ws = vec![0.0f32; fixture_items];
    let row_extract = microbench::run("sparse/cvae_input/row_to_dense", iters as u64, || {
        for r in 0..fixture_users {
            csr.row_to_dense_into(r, &mut row_ws);
        }
        std::hint::black_box(&row_ws);
    });
    println!(
        "  cvae_input/row_to_dense: {:.0} rows/s",
        fixture_users as f64 / (row_extract.mean_ns / 1e9)
    );

    let b = SeededRng::new(7).normal_matrix(fixture_items, 32);
    let mut spmm_out = Matrix::default();
    // Gate the serial path: it times the per-element kernel cost stably,
    // whereas pool fan-out on quota-throttled CI hosts drifts run to run.
    // Thread-count behaviour is pinned by the bit-identity oracle tests,
    // and parallel throughput by the `parallel` bench.
    let spmm = metadpa_tensor::pool::with_threads(1, || {
        microbench::run("sparse/spmm/dense32/serial", iters as u64, || {
            csr.spmm_dense_into(&b, &mut spmm_out);
            std::hint::black_box(&spmm_out);
        })
    });
    println!(
        "  spmm/dense32: {} x {} @ nnz {} times [{} x 32] in {:.2} ms",
        fixture_users,
        fixture_items,
        csr.nnz(),
        fixture_items,
        spmm.mean_ns / 1e6
    );

    // The spmm case is deliberately *not* part of the gated report: it is
    // memory-bandwidth-bound over a multi-MB random-access panel and swings
    // up to ~1.7x run-to-run on shared hosts, which no sane tolerance can
    // gate. It stays as a printed diagnostic; its correctness across thread
    // counts is pinned by the oracle test suite.
    drop(spmm);
    for r in [&gather, &row_extract] {
        blocks.push(BenchResult::to_bench_block(r));
    }

    if let Some(path) = &args.bench_out {
        metadpa_bench::baseline::write_bench_report(path, "microbench.sparse", blocks)
            .unwrap_or_else(|e| panic!("--bench-out {path}: {e}"));
    }

    // The memory cap is enforced everywhere: allocation watermarks are a
    // property of the code, not the host.
    if peak_mb > args.max_peak_mb {
        eprintln!(
            "streaming pass peaked at {peak_mb:.1} MB > cap {:.1} MB — something dense leaked \
             into the generator",
            args.max_peak_mb
        );
        std::process::exit(1);
    }
}

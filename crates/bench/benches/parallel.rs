//! Serial-vs-parallel microbenchmarks of the row-blocked matmul kernels.
//!
//! `METADPA_THREADS=1` is the exact serial code path; every other thread
//! count must be bit-identical (pinned by `crates/tensor/tests/determinism.rs`)
//! and *faster* once real cores are available. This bench times both paths
//! on the same inputs and records them as stable BENCH blocks
//! (`parallel_matmul/{serial,parallel}/<n>`) so the speedup is locked in by
//! `obs-report check` against `benchmarks/BENCH_parallel_baseline.json`
//! rather than claimed in a commit message.
//!
//! Flags (after `cargo bench -p metadpa-bench --bench parallel --`):
//! `--smoke` shrinks the sweep and iteration counts for CI;
//! `--bench-out <path>` writes a BENCH perf-baseline JSON;
//! `--min-speedup <x>` fails the run if parallel matmul throughput is below
//! `x`× serial. The floor is only *enforced* on hosts with 4+ cores — on
//! smaller machines (like 1-core CI runners) there is no parallelism to
//! measure, so the check downgrades to a warning, mirroring the
//! hardware-fingerprint downgrade in `obs-report check`.

use std::sync::Arc;

use metadpa_bench::microbench::{self, BenchResult};
use metadpa_tensor::pool::with_threads;
use metadpa_tensor::SeededRng;

struct BenchArgs {
    smoke: bool,
    bench_out: Option<String>,
    min_speedup: f64,
}

fn parse_args() -> BenchArgs {
    let mut out = BenchArgs { smoke: false, bench_out: None, min_speedup: 2.0 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--bench-out" => {
                out.bench_out =
                    Some(it.next().unwrap_or_else(|| panic!("--bench-out needs a value")));
            }
            "--min-speedup" => {
                out.min_speedup = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--min-speedup needs a number"));
            }
            // `cargo bench` appends `--bench` to harness = false targets.
            "--bench" => {}
            other => panic!(
                "unknown flag {other}; supported: --smoke, --bench-out <path>, --min-speedup <x>"
            ),
        }
    }
    out
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Times one kernel at one size on both code paths and returns
/// `(serial, parallel)` results plus the measured speedup.
fn bench_pair(
    kernel: &str,
    n: usize,
    iters: u64,
    par_threads: usize,
) -> (BenchResult, BenchResult, f64) {
    let mut rng = SeededRng::new(n as u64);
    let mut a = rng.normal_matrix(n, n);
    // Planted zeros so the zero-skip path is part of what's measured.
    for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 0.0;
        }
    }
    let b = rng.normal_matrix(n, n);
    let run_kernel = |threads: usize| match kernel {
        "matmul" => with_threads(threads, || std::hint::black_box(a.matmul(&b))),
        "matmul_tn" => with_threads(threads, || std::hint::black_box(a.matmul_tn(&b))),
        other => panic!("unknown kernel {other}"),
    };
    let serial = microbench::run(&format!("parallel_{kernel}/serial/{n}"), iters, || {
        run_kernel(1);
    });
    let parallel = microbench::run(&format!("parallel_{kernel}/parallel/{n}"), iters, || {
        run_kernel(par_threads);
    });
    let speedup = serial.p50_ns as f64 / parallel.p50_ns.max(1) as f64;
    (serial, parallel, speedup)
}

fn main() {
    let args = parse_args();
    metadpa_obs::enable(Arc::new(metadpa_obs::NullRecorder));

    let cores = host_cores();
    // Always exercise the parallel machinery (scoped workers + tiles), even
    // on a single core — the block names stay stable across hosts and the
    // baseline then tracks the machinery's overhead too.
    let par_threads = cores.max(2);
    let iters = if args.smoke { 3 } else { 10 };
    let sweep: &[usize] = if args.smoke { &[192] } else { &[192, 256, 384] };

    let mut results = Vec::new();
    let mut failures = Vec::new();
    for &n in sweep {
        for kernel in ["matmul", "matmul_tn"] {
            let (serial, parallel, speedup) = bench_pair(kernel, n, iters, par_threads);
            println!(
                "  {kernel}/{n}: speedup {speedup:.2}x at {par_threads} threads ({cores} cores)"
            );
            if speedup < args.min_speedup {
                failures.push(format!(
                    "{kernel}/{n}: {speedup:.2}x < required {:.2}x",
                    args.min_speedup
                ));
            }
            results.push(serial);
            results.push(parallel);
        }
    }

    if let Some(path) = &args.bench_out {
        let blocks = results.iter().map(BenchResult::to_bench_block).collect();
        metadpa_bench::baseline::write_bench_report(path, "microbench.parallel", blocks)
            .unwrap_or_else(|e| panic!("--bench-out {path}: {e}"));
    }

    if !failures.is_empty() {
        if cores >= 4 {
            eprintln!("parallel speedup below floor on a {cores}-core host:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "warning: speedup floor not met, but host has only {cores} core(s) — \
             not enforced below 4 cores:"
        );
        for f in &failures {
            eprintln!("  {f}");
        }
    }
}

//! Blocked-vs-naive kernel microbenchmarks and the zero-allocation hot
//! path's allocation budget.
//!
//! Two claims from the cache-blocked kernel rewrite are locked in here as
//! BENCH blocks (`benchmarks/BENCH_kernel_baseline.json`, gated by
//! `obs-report check` in CI) instead of being asserted in a commit
//! message:
//!
//! 1. **Throughput** — the shipped matmul kernels (cache-blocked, B-panel
//!    packed, pool-parallel) beat the retained naive reference
//!    ([`metadpa_tensor::reference`]) by at least `--min-speedup` (default
//!    1.5×) on 256³-and-up shapes. Like the `parallel` bench, the floor is
//!    only *enforced* on hosts with 4+ cores; smaller machines downgrade
//!    to a warning.
//! 2. **Allocations** — one training epoch driven through the `_into` +
//!    workspace API allocates at least `--min-alloc-ratio` (default 5×)
//!    fewer times than the same epoch through the allocating API,
//!    measured exactly by the CountingAlloc global allocator. This floor
//!    is enforced everywhere — allocation counts do not depend on cores.
//!
//! Flags (after `cargo bench -p metadpa-bench --bench kernels --`):
//! `--smoke` shrinks the sweep and iteration counts for CI;
//! `--bench-out <path>` writes a BENCH perf-baseline JSON;
//! `--min-speedup <x>` / `--min-alloc-ratio <x>` adjust the floors.

use std::sync::Arc;

use metadpa_bench::microbench::{self, BenchResult};
use metadpa_core::{PreferenceConfig, PreferenceModel};
use metadpa_nn::loss::{bce_with_logits, bce_with_logits_into};
use metadpa_nn::module::{zero_grad, Mode, Module};
use metadpa_nn::optim::Sgd;
use metadpa_tensor::{reference, Matrix, SeededRng};

struct BenchArgs {
    smoke: bool,
    bench_out: Option<String>,
    min_speedup: f64,
    min_alloc_ratio: f64,
}

fn parse_args() -> BenchArgs {
    let mut out =
        BenchArgs { smoke: false, bench_out: None, min_speedup: 1.5, min_alloc_ratio: 5.0 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--bench-out" => {
                out.bench_out =
                    Some(it.next().unwrap_or_else(|| panic!("--bench-out needs a value")));
            }
            "--min-speedup" => {
                out.min_speedup = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--min-speedup needs a number"));
            }
            "--min-alloc-ratio" => {
                out.min_alloc_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--min-alloc-ratio needs a number"));
            }
            // `cargo bench` appends `--bench` to harness = false targets.
            "--bench" => {}
            other => panic!(
                "unknown flag {other}; supported: --smoke, --bench-out <path>, \
                 --min-speedup <x>, --min-alloc-ratio <x>"
            ),
        }
    }
    out
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Times one kernel at one size through the naive reference and the
/// shipped (blocked) public API; returns both results and the speedup.
fn bench_kernel(kernel: &str, n: usize, iters: u64) -> (BenchResult, BenchResult, f64) {
    let mut rng = SeededRng::new(n as u64);
    let mut a = rng.normal_matrix(n, n);
    // Planted zeros so the zero-skip path is part of what's measured.
    for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 0.0;
        }
    }
    let b = rng.normal_matrix(n, n);
    let naive = microbench::run(&format!("kernels/{kernel}/naive/{n}"), iters, || match kernel {
        "matmul" => drop(std::hint::black_box(reference::matmul(&a, &b))),
        "matmul_tn" => drop(std::hint::black_box(reference::matmul_tn(&a, &b))),
        "matmul_nt" => drop(std::hint::black_box(reference::matmul_nt(&a, &b))),
        other => panic!("unknown kernel {other}"),
    });
    let blocked =
        microbench::run(&format!("kernels/{kernel}/blocked/{n}"), iters, || match kernel {
            "matmul" => drop(std::hint::black_box(a.matmul(&b))),
            "matmul_tn" => drop(std::hint::black_box(a.matmul_tn(&b))),
            "matmul_nt" => drop(std::hint::black_box(a.matmul_nt(&b))),
            other => panic!("unknown kernel {other}"),
        });
    let speedup = naive.p50_ns as f64 / blocked.p50_ns.max(1) as f64;
    (naive, blocked, speedup)
}

fn epoch_model(seed: u64) -> (PreferenceModel, Matrix, Matrix, Vec<usize>, Vec<f32>) {
    let config = PreferenceConfig { content_dim: 24, embed_dim: 16, hidden: [32, 16] };
    let mut rng = SeededRng::new(seed);
    let model = PreferenceModel::new(config, &mut rng);
    let item_content = rng.uniform_matrix(60, 24, -1.0, 1.0);
    let user = (0..24).map(|c| 0.1 * c as f32 - 1.0).collect::<Vec<f32>>();
    let items: Vec<usize> = (0..20).collect();
    let labels: Vec<f32> = items.iter().map(|&i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
    (model, Matrix::from_vec(1, 24, user), item_content, items, labels)
}

const EPOCH_STEPS: usize = 25;

/// One "epoch" through the allocating Module API: fresh matrices for the
/// input batch, labels, forward output, loss gradient and input gradient
/// on every step — the pre-workspace training loop.
fn epoch_allocating(
    model: &mut PreferenceModel,
    user: &Matrix,
    item_content: &Matrix,
    items: &[usize],
    labels: &[f32],
    sgd: &Sgd,
) {
    for _ in 0..EPOCH_STEPS {
        zero_grad(model);
        let input = PreferenceModel::assemble_input(user.row(0), item_content, items);
        let logits = model.forward(&input, Mode::Train);
        let targets = Matrix::from_vec(labels.len(), 1, labels.to_vec());
        let (_, grad) = bce_with_logits(&logits, &targets);
        let _ = model.backward(&grad);
        model.visit_params(&mut |p| sgd.step_param(p));
    }
}

/// Buffers for [`epoch_workspace`]; every field keeps its capacity across
/// steps, so a warmed-up epoch allocates nothing.
#[derive(Default)]
struct EpochScratch {
    input: Matrix,
    logits: Matrix,
    targets: Matrix,
    grad: Matrix,
    dx: Matrix,
}

/// The same epoch through the `_into` + workspace API.
fn epoch_workspace(
    model: &mut PreferenceModel,
    user: &Matrix,
    item_content: &Matrix,
    items: &[usize],
    labels: &[f32],
    sgd: &Sgd,
    ws: &mut EpochScratch,
) {
    for _ in 0..EPOCH_STEPS {
        zero_grad(model);
        PreferenceModel::assemble_input_into(user.row(0), item_content, items, &mut ws.input);
        model.forward_into(&mut ws.input, Mode::Train, &mut ws.logits);
        ws.targets.resize_for_overwrite(labels.len(), 1);
        ws.targets.as_mut_slice().copy_from_slice(labels);
        let _ = bce_with_logits_into(&ws.logits, &ws.targets, &mut ws.grad);
        model.backward_into(&mut ws.grad, &mut ws.dx);
        model.visit_params(&mut |p| sgd.step_param(p));
    }
}

fn main() {
    let args = parse_args();
    metadpa_obs::enable(Arc::new(metadpa_obs::NullRecorder));
    // Exact allocation counts for the epoch comparison (and alloc columns
    // in every BENCH block this binary writes).
    metadpa_obs::alloc::enable_profiling();

    let cores = host_cores();
    let iters = if args.smoke { 3 } else { 8 };
    let sweep: &[usize] = if args.smoke { &[256] } else { &[256, 320] };

    let mut results = Vec::new();
    let mut speedup_failures = Vec::new();
    for &n in sweep {
        for kernel in ["matmul", "matmul_tn", "matmul_nt"] {
            let (naive, blocked, speedup) = bench_kernel(kernel, n, iters);
            println!("  {kernel}/{n}: blocked {speedup:.2}x vs naive ({cores} cores)");
            if speedup < args.min_speedup {
                speedup_failures.push(format!(
                    "{kernel}/{n}: {speedup:.2}x < required {:.2}x",
                    args.min_speedup
                ));
            }
            results.push(naive);
            results.push(blocked);
        }
    }

    // Allocation budget of one training epoch, both API styles on
    // identically configured models.
    let epoch_iters = if args.smoke { 2 } else { 4 };
    let sgd = Sgd::new(0.01);
    let (mut model_a, user, item_content, items, labels) = epoch_model(11);
    let alloc_epoch = microbench::run("kernels/train_epoch/allocating", epoch_iters, || {
        epoch_allocating(&mut model_a, &user, &item_content, &items, &labels, &sgd);
    });
    let (mut model_w, user, item_content, items, labels) = epoch_model(11);
    let mut scratch = EpochScratch::default();
    let ws_epoch = microbench::run("kernels/train_epoch/workspace", epoch_iters, || {
        epoch_workspace(&mut model_w, &user, &item_content, &items, &labels, &sgd, &mut scratch);
    });
    let alloc_ratio =
        alloc_epoch.alloc_count_per_iter as f64 / ws_epoch.alloc_count_per_iter.max(1) as f64;
    println!(
        "  train_epoch: {} allocs/epoch allocating vs {} workspace = {alloc_ratio:.1}x fewer",
        alloc_epoch.alloc_count_per_iter, ws_epoch.alloc_count_per_iter
    );
    results.push(alloc_epoch);
    results.push(ws_epoch);

    if let Some(path) = &args.bench_out {
        let blocks = results.iter().map(BenchResult::to_bench_block).collect();
        metadpa_bench::baseline::write_bench_report(path, "microbench.kernels", blocks)
            .unwrap_or_else(|e| panic!("--bench-out {path}: {e}"));
    }

    let mut failed = false;
    if !speedup_failures.is_empty() {
        if cores >= 4 {
            eprintln!("blocked-kernel speedup below floor on a {cores}-core host:");
            for f in &speedup_failures {
                eprintln!("  {f}");
            }
            failed = true;
        } else {
            eprintln!(
                "warning: speedup floor not met, but host has only {cores} core(s) — \
                 not enforced below 4 cores:"
            );
            for f in &speedup_failures {
                eprintln!("  {f}");
            }
        }
    }
    if alloc_ratio < args.min_alloc_ratio {
        eprintln!(
            "allocation reduction below floor: {alloc_ratio:.1}x < required {:.1}x",
            args.min_alloc_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

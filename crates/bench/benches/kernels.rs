//! Blocked-vs-naive and SIMD-vs-scalar kernel microbenchmarks plus the
//! zero-allocation hot path's allocation budget.
//!
//! Four claims from the kernel work are locked in here as BENCH blocks
//! (`benchmarks/BENCH_kernel_baseline.json`, gated by `obs-report check`
//! in CI) instead of being asserted in a commit message:
//!
//! 1. **Throughput** — the shipped matmul kernels (cache-blocked, B-panel
//!    packed, SIMD-dispatched, pool-parallel) beat the retained naive
//!    reference ([`metadpa_tensor::reference`]) by at least
//!    `--min-speedup` (default 2.0×) on 256³-and-up shapes. Like the
//!    `parallel` bench, the floor is only *enforced* on hosts with 4+
//!    cores; smaller machines downgrade to a warning.
//! 2. **SIMD** — the exact AVX2 microkernels beat the scalar blocked
//!    kernels by at least `--min-simd-speedup` (default 2.0×) at 512².
//!    Enforced only on hosts where [`metadpa_tensor::simd::available`]
//!    reports AVX2+FMA; elsewhere a warning (same policy as the core
//!    rule).
//! 3. **f32 serving** — fused-FMA catalogue ranking (the f32-precision
//!    serving path, `simd::Policy::Fused`) beats the forced-scalar path
//!    by at least `--min-fused-speedup` (default 3.0×). Enforced on AVX2
//!    hosts only, like the SIMD floor.
//! 4. **Allocations** — one training epoch driven through the `_into` +
//!    workspace API allocates at least `--min-alloc-ratio` (default 5×)
//!    fewer times than the same epoch through the allocating API,
//!    measured exactly by the CountingAlloc global allocator. This floor
//!    is enforced everywhere — allocation counts do not depend on cores.
//!
//! Flags (after `cargo bench -p metadpa-bench --bench kernels --`):
//! `--smoke` shrinks the sweep and iteration counts for CI;
//! `--bench-out <path>` writes a BENCH perf-baseline JSON;
//! `--min-speedup <x>` / `--min-simd-speedup <x>` /
//! `--min-fused-speedup <x>` / `--min-alloc-ratio <x>` adjust the floors.

use std::sync::Arc;

use metadpa_bench::microbench::{self, BenchResult};
use metadpa_core::{PreferenceConfig, PreferenceModel};
use metadpa_nn::loss::{bce_with_logits, bce_with_logits_into};
use metadpa_nn::module::{zero_grad, Mode, Module};
use metadpa_nn::optim::Sgd;
use metadpa_tensor::{reference, simd, Matrix, SeededRng};

struct BenchArgs {
    smoke: bool,
    bench_out: Option<String>,
    min_speedup: f64,
    min_simd_speedup: f64,
    min_fused_speedup: f64,
    min_alloc_ratio: f64,
}

fn parse_args() -> BenchArgs {
    let mut out = BenchArgs {
        smoke: false,
        bench_out: None,
        min_speedup: 2.0,
        min_simd_speedup: 2.0,
        min_fused_speedup: 3.0,
        min_alloc_ratio: 5.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let num = |flag: &str, it: &mut dyn Iterator<Item = String>| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a number"))
        };
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--bench-out" => {
                out.bench_out =
                    Some(it.next().unwrap_or_else(|| panic!("--bench-out needs a value")));
            }
            "--min-speedup" => out.min_speedup = num("--min-speedup", &mut it),
            "--min-simd-speedup" => out.min_simd_speedup = num("--min-simd-speedup", &mut it),
            "--min-fused-speedup" => out.min_fused_speedup = num("--min-fused-speedup", &mut it),
            "--min-alloc-ratio" => out.min_alloc_ratio = num("--min-alloc-ratio", &mut it),
            // `cargo bench` appends `--bench` to harness = false targets.
            "--bench" => {}
            other => panic!(
                "unknown flag {other}; supported: --smoke, --bench-out <path>, \
                 --min-speedup <x>, --min-simd-speedup <x>, --min-fused-speedup <x>, \
                 --min-alloc-ratio <x>"
            ),
        }
    }
    out
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Times one kernel at one size through the naive reference and the
/// shipped (blocked) public API; returns both results and the speedup.
fn bench_kernel(kernel: &str, n: usize, iters: u64) -> (BenchResult, BenchResult, f64) {
    let mut rng = SeededRng::new(n as u64);
    let mut a = rng.normal_matrix(n, n);
    // Planted zeros so the zero-skip path is part of what's measured.
    for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 0.0;
        }
    }
    let b = rng.normal_matrix(n, n);
    let naive = microbench::run(&format!("kernels/{kernel}/naive/{n}"), iters, || match kernel {
        "matmul" => drop(std::hint::black_box(reference::matmul(&a, &b))),
        "matmul_tn" => drop(std::hint::black_box(reference::matmul_tn(&a, &b))),
        "matmul_nt" => drop(std::hint::black_box(reference::matmul_nt(&a, &b))),
        other => panic!("unknown kernel {other}"),
    });
    let blocked =
        microbench::run(&format!("kernels/{kernel}/blocked/{n}"), iters, || match kernel {
            "matmul" => drop(std::hint::black_box(a.matmul(&b))),
            "matmul_tn" => drop(std::hint::black_box(a.matmul_tn(&b))),
            "matmul_nt" => drop(std::hint::black_box(a.matmul_nt(&b))),
            other => panic!("unknown kernel {other}"),
        });
    let speedup = naive.p50_ns as f64 / blocked.p50_ns.max(1) as f64;
    (naive, blocked, speedup)
}

/// Times `matmul` at one size through the scalar blocked kernels
/// (`Policy::ForcedScalar`) and the exact AVX2 microkernels
/// (`Policy::Auto`); returns both results and the SIMD speedup. Dense
/// operands — this row measures pure kernel throughput, not the zero-skip
/// path.
fn bench_simd(n: usize, iters: u64) -> (BenchResult, BenchResult, f64) {
    let mut rng = SeededRng::new(7 + n as u64);
    let a = rng.normal_matrix(n, n);
    let b = rng.normal_matrix(n, n);
    let scalar = microbench::run(&format!("kernels/matmul/scalar/{n}"), iters, || {
        simd::with_policy(simd::Policy::ForcedScalar, || {
            drop(std::hint::black_box(a.matmul(&b)));
        });
    });
    let vectored = microbench::run(&format!("kernels/matmul/simd/{n}"), iters, || {
        simd::with_policy(simd::Policy::Auto, || {
            drop(std::hint::black_box(a.matmul(&b)));
        });
    });
    let speedup = scalar.p50_ns as f64 / vectored.p50_ns.max(1) as f64;
    (scalar, vectored, speedup)
}

/// The serving catalogue-ranking workload: one full-catalogue ranking
/// pass through a serving-sized preference model. The scalar row is the
/// scalar-kernel serving path — a full `score_items_into` pass, embedding
/// the catalogue and scoring it per request. The f32 row is the
/// f32-precision artifact path exactly as `ArtifactRecommender` runs it:
/// item embeddings precomputed once at artifact load (outside the timed
/// loop), per-request scoring through the fused-FMA kernels via
/// `score_embedded_into`. All widths are multiples of the register tile
/// so the fused rows measure the vector kernels, not edge handling; one
/// untimed warm-up call per path fills the workspace buffers so neither
/// row pays the one-time allocations.
fn bench_serve_rank(iters: u64) -> (BenchResult, BenchResult, f64) {
    let config = PreferenceConfig { content_dim: 64, embed_dim: 128, hidden: [256, 128] };
    let mut rng = SeededRng::new(23);
    let mut model = PreferenceModel::new(config, &mut rng);
    let n_items = 4096;
    let item_content = rng.uniform_matrix(n_items, 64, -1.0, 1.0);
    let user: Vec<f32> = (0..64).map(|c| 0.03 * c as f32 - 1.0).collect();
    let catalogue: Vec<usize> = (0..n_items).collect();
    let mut scores = Vec::new();
    simd::with_policy(simd::Policy::ForcedScalar, || {
        model.score_items_into(&user, &item_content, &catalogue, &mut scores);
    });
    let scalar = microbench::run("kernels/serve_rank/scalar", iters, || {
        simd::with_policy(simd::Policy::ForcedScalar, || {
            model.score_items_into(&user, &item_content, &catalogue, &mut scores);
            std::hint::black_box(&scores);
        });
    });
    let fused_embeds = simd::with_policy(simd::Policy::Fused, || model.embed_items(&item_content));
    simd::with_policy(simd::Policy::Fused, || {
        model.score_embedded_into(&user, &fused_embeds, &catalogue, &mut scores);
    });
    let fused = microbench::run("kernels/serve_rank/f32", iters, || {
        simd::with_policy(simd::Policy::Fused, || {
            model.score_embedded_into(&user, &fused_embeds, &catalogue, &mut scores);
            std::hint::black_box(&scores);
        });
    });
    let speedup = scalar.p50_ns as f64 / fused.p50_ns.max(1) as f64;
    (scalar, fused, speedup)
}

fn epoch_model(seed: u64) -> (PreferenceModel, Matrix, Matrix, Vec<usize>, Vec<f32>) {
    let config = PreferenceConfig { content_dim: 24, embed_dim: 16, hidden: [32, 16] };
    let mut rng = SeededRng::new(seed);
    let model = PreferenceModel::new(config, &mut rng);
    let item_content = rng.uniform_matrix(60, 24, -1.0, 1.0);
    let user = (0..24).map(|c| 0.1 * c as f32 - 1.0).collect::<Vec<f32>>();
    let items: Vec<usize> = (0..20).collect();
    let labels: Vec<f32> = items.iter().map(|&i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
    (model, Matrix::from_vec(1, 24, user), item_content, items, labels)
}

const EPOCH_STEPS: usize = 25;

/// One "epoch" through the allocating Module API: fresh matrices for the
/// input batch, labels, forward output, loss gradient and input gradient
/// on every step — the pre-workspace training loop.
fn epoch_allocating(
    model: &mut PreferenceModel,
    user: &Matrix,
    item_content: &Matrix,
    items: &[usize],
    labels: &[f32],
    sgd: &Sgd,
) {
    for _ in 0..EPOCH_STEPS {
        zero_grad(model);
        let input = PreferenceModel::assemble_input(user.row(0), item_content, items);
        let logits = model.forward(&input, Mode::Train);
        let targets = Matrix::from_vec(labels.len(), 1, labels.to_vec());
        let (_, grad) = bce_with_logits(&logits, &targets);
        let _ = model.backward(&grad);
        model.visit_params(&mut |p| sgd.step_param(p));
    }
}

/// Buffers for [`epoch_workspace`]; every field keeps its capacity across
/// steps, so a warmed-up epoch allocates nothing.
#[derive(Default)]
struct EpochScratch {
    input: Matrix,
    logits: Matrix,
    targets: Matrix,
    grad: Matrix,
    dx: Matrix,
}

/// The same epoch through the `_into` + workspace API.
fn epoch_workspace(
    model: &mut PreferenceModel,
    user: &Matrix,
    item_content: &Matrix,
    items: &[usize],
    labels: &[f32],
    sgd: &Sgd,
    ws: &mut EpochScratch,
) {
    for _ in 0..EPOCH_STEPS {
        zero_grad(model);
        PreferenceModel::assemble_input_into(user.row(0), item_content, items, &mut ws.input);
        model.forward_into(&mut ws.input, Mode::Train, &mut ws.logits);
        ws.targets.resize_for_overwrite(labels.len(), 1);
        ws.targets.as_mut_slice().copy_from_slice(labels);
        let _ = bce_with_logits_into(&ws.logits, &ws.targets, &mut ws.grad);
        model.backward_into(&mut ws.grad, &mut ws.dx);
        model.visit_params(&mut |p| sgd.step_param(p));
    }
}

fn main() {
    let args = parse_args();
    metadpa_obs::enable(Arc::new(metadpa_obs::NullRecorder));
    // Exact allocation counts for the epoch comparison (and alloc columns
    // in every BENCH block this binary writes).
    metadpa_obs::alloc::enable_profiling();

    let cores = host_cores();
    let iters = if args.smoke { 3 } else { 8 };
    let sweep: &[usize] = if args.smoke { &[256] } else { &[256, 320] };

    let mut results = Vec::new();
    let mut speedup_failures = Vec::new();
    for &n in sweep {
        for kernel in ["matmul", "matmul_tn", "matmul_nt"] {
            let (naive, blocked, speedup) = bench_kernel(kernel, n, iters);
            println!("  {kernel}/{n}: blocked {speedup:.2}x vs naive ({cores} cores)");
            if speedup < args.min_speedup {
                speedup_failures.push(format!(
                    "{kernel}/{n}: {speedup:.2}x < required {:.2}x",
                    args.min_speedup
                ));
            }
            results.push(naive);
            results.push(blocked);
        }
    }

    // SIMD-vs-scalar and fused serving rows. The floors only make sense
    // where the AVX2 kernels can actually run; elsewhere the rows still
    // record (scalar vs scalar ≈ 1.0×) but are warn-only.
    let simd_sweep: &[usize] = if args.smoke { &[256] } else { &[256, 512] };
    let mut simd_failures = Vec::new();
    for &n in simd_sweep {
        let (scalar, vectored, speedup) = bench_simd(n, iters);
        println!("  matmul/{n}: simd {speedup:.2}x vs scalar blocked ({})", simd::feature_string());
        if speedup < args.min_simd_speedup {
            simd_failures.push(format!(
                "matmul/{n}: {speedup:.2}x < required {:.2}x",
                args.min_simd_speedup
            ));
        }
        results.push(scalar);
        results.push(vectored);
    }
    let serve_iters = if args.smoke { 3 } else { 12 };
    let (serve_scalar, serve_fused, serve_speedup) = bench_serve_rank(serve_iters);
    println!("  serve_rank: f32 fused {serve_speedup:.2}x vs scalar ({})", simd::feature_string());
    if serve_speedup < args.min_fused_speedup {
        simd_failures.push(format!(
            "serve_rank: {serve_speedup:.2}x < required {:.2}x",
            args.min_fused_speedup
        ));
    }
    results.push(serve_scalar);
    results.push(serve_fused);

    // Allocation budget of one training epoch, both API styles on
    // identically configured models.
    let epoch_iters = if args.smoke { 2 } else { 4 };
    let sgd = Sgd::new(0.01);
    let (mut model_a, user, item_content, items, labels) = epoch_model(11);
    let alloc_epoch = microbench::run("kernels/train_epoch/allocating", epoch_iters, || {
        epoch_allocating(&mut model_a, &user, &item_content, &items, &labels, &sgd);
    });
    let (mut model_w, user, item_content, items, labels) = epoch_model(11);
    let mut scratch = EpochScratch::default();
    let ws_epoch = microbench::run("kernels/train_epoch/workspace", epoch_iters, || {
        epoch_workspace(&mut model_w, &user, &item_content, &items, &labels, &sgd, &mut scratch);
    });
    let alloc_ratio =
        alloc_epoch.alloc_count_per_iter as f64 / ws_epoch.alloc_count_per_iter.max(1) as f64;
    println!(
        "  train_epoch: {} allocs/epoch allocating vs {} workspace = {alloc_ratio:.1}x fewer",
        alloc_epoch.alloc_count_per_iter, ws_epoch.alloc_count_per_iter
    );
    results.push(alloc_epoch);
    results.push(ws_epoch);

    if let Some(path) = &args.bench_out {
        let blocks = results.iter().map(BenchResult::to_bench_block).collect();
        metadpa_bench::baseline::write_bench_report(path, "microbench.kernels", blocks)
            .unwrap_or_else(|e| panic!("--bench-out {path}: {e}"));
    }

    let mut failed = false;
    if !speedup_failures.is_empty() {
        if cores >= 4 {
            eprintln!("blocked-kernel speedup below floor on a {cores}-core host:");
            for f in &speedup_failures {
                eprintln!("  {f}");
            }
            failed = true;
        } else {
            eprintln!(
                "warning: speedup floor not met, but host has only {cores} core(s) — \
                 not enforced below 4 cores:"
            );
            for f in &speedup_failures {
                eprintln!("  {f}");
            }
        }
    }
    if !simd_failures.is_empty() {
        if simd::available() {
            eprintln!("SIMD/fused speedup below floor on an AVX2+FMA host:");
            for f in &simd_failures {
                eprintln!("  {f}");
            }
            failed = true;
        } else {
            eprintln!(
                "warning: SIMD/fused floors not met, but host lacks AVX2+FMA — not enforced:"
            );
            for f in &simd_failures {
                eprintln!("  {f}");
            }
        }
    }
    if alloc_ratio < args.min_alloc_ratio {
        eprintln!(
            "allocation reduction below floor: {alloc_ratio:.1}x < required {:.1}x",
            args.min_alloc_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

//! # metadpa
//!
//! Umbrella crate for the Rust reproduction of *Diverse Preference
//! Augmentation with Multiple Domains for Cold-start Recommendations*
//! (MetaDPA, ICDE 2022).
//!
//! This crate re-exports the public API of every workspace member so that
//! downstream users — and the examples and integration tests in this
//! repository — can depend on a single crate:
//!
//! * [`obs`] — zero-dependency tracing spans, metrics, and JSONL events,
//! * [`tensor`] — dense matrix math and seeded randomness,
//! * [`nn`] — the neural-network substrate with verified backward passes,
//! * [`data`] — the SynthAmazon multi-domain benchmark and evaluation protocol,
//! * [`metrics`] — HR/MRR/NDCG/AUC and the Wilcoxon signed-rank test,
//! * [`core`] — Dual-CVAE adaptation, diverse augmentation, preference
//!   meta-learning, and the end-to-end [`core::pipeline::MetaDpa`] pipeline,
//! * [`baselines`] — the seven comparison systems from the paper,
//! * [`serve`] — versioned checkpoints and the cold-start inference server,
//! * [`feedback`] — streaming implicit feedback, online cold→warm
//!   graduation, and deterministic log replay.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use metadpa_baselines as baselines;
pub use metadpa_core as core;
pub use metadpa_data as data;
pub use metadpa_feedback as feedback;
pub use metadpa_metrics as metrics;
pub use metadpa_nn as nn;
pub use metadpa_obs as obs;
pub use metadpa_serve as serve;
pub use metadpa_tensor as tensor;

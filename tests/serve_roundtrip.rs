//! End-to-end serving round trip: fit the pipeline, export an artifact,
//! write it to disk in `metadpa-ckpt/v1`, reload it, and verify the
//! reloaded recommender reproduces the live model's top-K lists exactly —
//! for warm users straight from θ AND for a cold-start user after
//! serve-time MAML adaptation on their support set.

use metadpa_core::eval::{recommend_top_k, Recommender};
use metadpa_core::{MetaDpa, MetaDpaConfig, ARTIFACT_SCHEMA};
use metadpa_data::generator::generate_world;
use metadpa_data::presets::tiny_world;
use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
use metadpa_serve::{load_artifact, save_artifact, Engine};

const K: usize = 10;

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("metadpa_roundtrip_{tag}_{}.ckpt", std::process::id()))
        .to_string_lossy()
        .to_string()
}

#[test]
fn fit_export_reload_reproduces_warm_and_cold_top_k() {
    let world = generate_world(&tiny_world(11));
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    model.fit(&world, &warm);

    // Export -> save -> load: the disk format must hand back the exact
    // artifact, metadata included.
    let artifact = model.export_artifact(&world);
    assert_eq!(artifact.meta.schema, ARTIFACT_SCHEMA);
    assert_eq!(artifact.meta.data_fingerprint, world.fingerprint_hex());
    assert!(!artifact.meta.git_rev.is_empty(), "artifact must carry a git rev");
    let path = temp_path("e2e");
    save_artifact(&path, &artifact).expect("save artifact");
    let reloaded = load_artifact(&path).expect("load artifact");
    let _ = std::fs::remove_file(&path);
    assert_eq!(reloaded.meta.data_fingerprint, artifact.meta.data_fingerprint);
    let mut rec = reloaded.into_recommender().expect("reloaded artifact is valid");

    // Warm users: the reloaded recommender must reproduce the live
    // model's full-catalogue top-K (no rated-item exclusion — the
    // artifact deliberately carries no interaction lists).
    for user in [0, 1, world.target.n_users() / 2, world.target.n_users() - 1] {
        let live = recommend_top_k(&mut model, &world.target, user, K, false);
        let served = rec.recommend(user, K, None).expect("warm recommend");
        assert_eq!(served, live, "warm top-{K} diverged for user {user}");
    }

    // Cold-start user: serve-time adaptation on the scenario's support
    // set must land on the same adapted top-K as the offline
    // fine-tune -> score -> restore path.
    let cold = splitter.scenario(ScenarioKind::ColdUser);
    let task = cold.finetune_tasks.first().expect("cold scenario has support tasks").clone();
    assert!(!task.support.is_empty());

    let theta = model.snapshot_state();
    model.fine_tune(std::slice::from_ref(&task), &world.target);
    let live_adapted = recommend_top_k(&mut model, &world.target, task.user, K, false);
    model.restore_state(&theta);
    let live_rewound = recommend_top_k(&mut model, &world.target, task.user, K, false);

    let adapted = rec.adapt_user(task.user, &task.support).expect("serve-time adaptation");
    let served_adapted = rec.recommend(task.user, K, Some(&adapted)).expect("adapted recommend");
    assert_eq!(
        served_adapted, live_adapted,
        "adapted top-{K} diverged for cold user {}",
        task.user
    );

    // Adaptation must not leak into either side's base parameters.
    let served_rewound = rec.recommend(task.user, K, None).expect("post-adapt recommend");
    assert_eq!(served_rewound, live_rewound, "adaptation leaked into θ");
}

#[test]
fn engine_serves_the_same_lists_as_the_raw_recommender() {
    let world = generate_world(&tiny_world(12));
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    model.fit(&world, &warm);
    let artifact = model.export_artifact(&world);

    let mut rec = artifact.clone().into_recommender().expect("recommender");
    let engine = Engine::new(artifact.into_recommender().expect("engine recommender"));

    let user = 3;
    let direct = rec.recommend(user, K, None).expect("direct");
    let (via_engine, _) = engine.recommend_user(user, K).expect("engine");
    assert_eq!(via_engine, direct);

    // Adapt through the engine cache; the next lookup must serve the
    // exact list the raw recommender computes with the same support.
    let support = vec![(0, 1.0_f32), (1, 0.0), (2, 1.0)];
    engine.adapt_user(user, &support).expect("engine adapt");
    let adapted = rec.adapt_user(user, &support).expect("direct adapt");
    let direct_adapted = rec.recommend(user, K, Some(&adapted)).expect("direct adapted");
    let (cached, _) = engine.recommend_user(user, K).expect("cached");
    assert_eq!(cached, direct_adapted);
}

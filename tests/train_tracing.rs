//! Training-run telemetry contracts, end to end: (1) switching
//! observability on must never change a single trained parameter bit —
//! telemetry rides alongside the optimiser, it is not allowed to perturb
//! it; (2) with a file recorder attached, every epoch of every phase
//! appears in the trace exactly once, stamped with the pipeline's
//! run-ledger ID; (3) the anomaly sentinels fail fast on a poisoned θ
//! with a typed error and leave the parameters untouched; (4) the
//! train → export → serve chain joins on one run ID across the trace,
//! the checkpoint metadata, and the `/health` document.

use std::collections::BTreeMap;
use std::sync::Arc;

use metadpa_core::artifact::Artifact;
use metadpa_core::eval::Recommender;
use metadpa_core::{
    MamlConfig, MetaDpa, MetaDpaConfig, MetaLearner, PreferenceConfig, SentinelConfig,
};
use metadpa_data::generator::generate_world;
use metadpa_data::presets::tiny_world;
use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
use metadpa_data::task::Task;
use metadpa_nn::module::{snapshot, Module};
use metadpa_obs::lineage::{run_id_from_health_json, Lineage};
use metadpa_obs::recorder::FileRecorder;
use metadpa_obs::stream::{read_file_lenient, JsonValue, StreamEvent};
use metadpa_serve::http::Request;
use metadpa_serve::{load_artifact, router, save_artifact, Engine};
use metadpa_tensor::{Matrix, SeededRng};

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("metadpa_train_trace_{tag}_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .to_string()
}

/// Fits the fast pipeline on the tiny world and returns (model, artifact).
fn fit_and_export(seed: u64) -> (MetaDpa, Artifact) {
    let world = generate_world(&tiny_world(seed));
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    model.fit(&world, &warm);
    let artifact = model.export_artifact(&world);
    (model, artifact)
}

/// Bit-exact parameter comparison (NaN-safe, unlike `==` on floats).
fn assert_params_identical(a: &Artifact, b: &Artifact) {
    assert_eq!(a.params.len(), b.params.len(), "parameter count differs");
    for ((name_a, mat_a), (name_b, mat_b)) in a.params.iter().zip(&b.params) {
        assert_eq!(name_a, name_b, "parameter order differs");
        let bits_a: Vec<u32> = mat_a.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = mat_b.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "parameter {name_a} differs bit-for-bit");
    }
}

#[test]
fn training_is_bit_identical_with_observability_on_and_off() {
    let _guard = metadpa_obs::test_lock();
    metadpa_obs::disable();

    let (_, dark) = fit_and_export(33);

    let trace = temp_path("inert");
    metadpa_obs::enable(Arc::new(FileRecorder::create(&trace).expect("trace file")));
    let (_, lit) = fit_and_export(33);
    metadpa_obs::flush();
    metadpa_obs::disable();

    let traced = read_file_lenient(&trace).expect("trace readable");
    let _ = std::fs::remove_file(&trace);

    assert_params_identical(&dark, &lit);
    // And the traced run really was traced — this is not a vacuous pass.
    let n_epochs = traced.events.iter().filter(|e| e.kind == "train_epoch").count();
    assert!(n_epochs > 0, "traced training must log train_epoch records");
    // The run IDs differ only in ledger sequence, never in config hash:
    // same seed + same config → same fingerprint halves.
    let key = |a: &Artifact| {
        let id = a.meta.run_id.clone();
        id.rsplit_once('-').map(|(head, _seq)| head.to_string()).expect("run id shape")
    };
    assert_eq!(key(&dark), key(&lit), "same config must hash to the same run prefix");
}

#[test]
fn every_epoch_is_traced_exactly_once_with_the_run_id() {
    let _guard = metadpa_obs::test_lock();
    metadpa_obs::disable();

    let trace = temp_path("epochs");
    metadpa_obs::enable(Arc::new(FileRecorder::create(&trace).expect("trace file")));
    let (model, artifact) = fit_and_export(34);
    metadpa_obs::flush();
    metadpa_obs::disable();

    let traced = read_file_lenient(&trace).expect("trace readable");
    let _ = std::fs::remove_file(&trace);
    assert!(traced.errors.is_empty(), "trace has parse errors: {:?}", traced.errors);

    let run_id = model.run_id();
    assert!(!run_id.is_empty(), "fit must mint a run ID");
    assert_eq!(artifact.meta.run_id, run_id, "export must stamp the training run ID");

    // Group per (phase, source): the CVAE phase restarts its epoch count
    // for every source pair, the MAML phase runs once.
    let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for ev in traced.events.iter().filter(|e| e.kind == "train_epoch") {
        assert_eq!(
            ev.field("run").and_then(JsonValue::as_str),
            Some(run_id.as_str()),
            "every train_epoch record carries the run ID"
        );
        for key in ["loss", "grad_norm", "wall_ms", "eta_ms", "epochs"] {
            assert!(ev.field(key).is_some(), "train_epoch record missing {key}");
        }
        let group = group_key(ev);
        groups.entry(group).or_default().push(ev.field_u64("epoch").expect("epoch field"));
    }
    assert!(
        groups.keys().any(|k| k.starts_with("maml")),
        "no MAML epoch records in {:?}",
        groups.keys().collect::<Vec<_>>()
    );
    assert!(
        groups.keys().any(|k| k.starts_with("cvae")),
        "no CVAE epoch records in {:?}",
        groups.keys().collect::<Vec<_>>()
    );
    for (group, epochs) in &groups {
        let expect: Vec<u64> = (0..epochs.len() as u64).collect();
        assert_eq!(epochs, &expect, "{group}: epochs must count 0,1,2,… exactly once each");
    }
    // The sentinels stayed quiet on a healthy run.
    assert_eq!(
        traced.events.iter().filter(|e| e.kind == "train_anomaly").count(),
        0,
        "healthy training must not emit anomalies"
    );
}

fn group_key(ev: &StreamEvent) -> String {
    let phase = ev.field("phase").and_then(JsonValue::as_str).unwrap_or("?").to_string();
    match ev.field("source").and_then(JsonValue::as_str) {
        Some(src) if !src.is_empty() => format!("{phase}/{src}"),
        _ => phase,
    }
}

#[test]
fn nan_loss_trips_the_sentinel_and_fail_fast_leaves_theta_intact() {
    let _guard = metadpa_obs::test_lock();
    metadpa_obs::disable();

    let pref = PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] };
    let maml = MamlConfig { epochs: 6, meta_batch: 4, ..MamlConfig::default() };
    let mut rng = SeededRng::new(35);
    let mut learner = MetaLearner::new(pref, maml, &mut rng);

    let user_content = rng.uniform_matrix(8, 6, -1.0, 1.0);
    let item_content = rng.uniform_matrix(8, 6, -1.0, 1.0);
    let tasks: Vec<Task> = (0..8)
        .map(|u| Task {
            user: u,
            support: (0..4).map(|i| (i, if (u + i) % 2 == 0 { 1.0 } else { 0.0 })).collect(),
            query: (4..8).map(|i| (i, if (u + i) % 2 == 0 { 1.0 } else { 0.0 })).collect(),
        })
        .collect();

    // Poison θ: every forward pass now yields a NaN loss.
    learner.model_mut().visit_params(&mut |p| {
        p.value.as_mut_slice()[0] = f32::NAN;
    });
    let before = snapshot(learner.model_mut());

    let sentinels = SentinelConfig { fail_fast: true, ..SentinelConfig::default() };
    let err = learner
        .meta_train_checked(&tasks, &user_content, &item_content, &sentinels)
        .expect_err("a NaN loss must abort fail-fast training");
    assert_eq!(err.anomaly.kind(), "non_finite_loss");
    assert_eq!(err.anomaly.phase(), "maml");
    assert_eq!(err.anomaly.epoch(), 0);

    // The abort rewound θ to its state at epoch entry — here, the exact
    // pre-call parameters, NaN poison included.
    let after = snapshot(learner.model_mut());
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(b), bits(a), "abort must leave θ bit-identical");
    }
}

#[test]
fn lineage_joins_trace_checkpoint_and_health_on_one_run_id() {
    let _guard = metadpa_obs::test_lock();
    metadpa_obs::disable();

    let trace = temp_path("lineage");
    metadpa_obs::enable(Arc::new(FileRecorder::create(&trace).expect("trace file")));
    let (model, artifact) = fit_and_export(36);
    metadpa_obs::flush();
    metadpa_obs::disable();

    let run_id = model.run_id();
    let ckpt = temp_path("lineage_ckpt").replace(".jsonl", ".ckpt");
    save_artifact(&ckpt, &artifact).expect("save artifact");

    // Serve side: load the checkpoint back and ask /health who it is.
    let loaded = load_artifact(&ckpt).expect("load artifact");
    assert_eq!(loaded.meta.run_id, run_id, "checkpoint round-trips the run ID");
    let engine = Arc::new(Engine::new(loaded.into_recommender().expect("recommender")));
    let handler = router(Arc::clone(&engine));
    let resp = handler(&Request {
        method: "GET".to_string(),
        path: "/health".to_string(),
        body: Vec::new(),
    });
    assert_eq!(resp.status, 200);
    let health_run = run_id_from_health_json(&resp.body).expect("/health carries run_id");

    let traced = read_file_lenient(&trace).expect("trace readable");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&ckpt);

    let lineage = Lineage::from_events(&traced.events)
        .with_ckpt(&artifact.meta.run_id)
        .with_health(&health_run);
    assert_eq!(lineage.join().as_deref(), Ok(run_id.as_str()), "{}", lineage.render());
    assert!(lineage.exported, "the trace records the export event");
    let report = lineage.render();
    assert!(report.contains("all sources join"), "{report}");
}

//! The observability layer must be numerically inert: running the full
//! MetaDPA pipeline with obs enabled must produce bit-identical metrics to
//! running it with obs disabled, while still capturing the expected span
//! and loss-event stream.

use std::sync::Arc;

use metadpa::core::eval::{evaluate_scenario, Recommender};
use metadpa::core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa::data::generator::generate_world;
use metadpa::data::presets::tiny_world;
use metadpa::data::splits::{Scenario, ScenarioKind, SplitConfig, Splitter};
use metadpa::metrics::MetricSummary;
use metadpa::obs::MemoryRecorder;

fn run_pipeline(seed: u64) -> MetricSummary {
    let world = generate_world(&tiny_world(seed));
    let splitter = Splitter::new(&world.target, SplitConfig { seed, ..SplitConfig::default() });
    let scenarios: Vec<Scenario> =
        ScenarioKind::ALL.iter().map(|&k| splitter.scenario(k)).collect();
    let mut dpa = MetaDpa::new({
        let mut c = MetaDpaConfig::fast();
        c.seed = seed;
        c
    });
    dpa.fit(&world, &scenarios[0]);
    evaluate_scenario(&mut dpa, &world, &scenarios[1], 10)
}

fn bits(s: &MetricSummary) -> [u32; 4] {
    [s.hr.to_bits(), s.mrr.to_bits(), s.ndcg.to_bits(), s.auc.to_bits()]
}

#[test]
fn pipeline_metrics_are_bit_identical_with_obs_on_and_off() {
    let _guard = metadpa::obs::test_lock();

    metadpa::obs::disable();
    let off = run_pipeline(5);

    let recorder = Arc::new(MemoryRecorder::default());
    metadpa::obs::enable(recorder.clone());
    let on = run_pipeline(5);
    metadpa::obs::disable();

    assert_eq!(bits(&off), bits(&on), "obs must never perturb the numbers");
    assert_eq!(off.count, on.count);

    // The enabled run must actually have observed the pipeline: nested
    // block spans and per-epoch Dual-CVAE loss events.
    let events = recorder.events();
    assert!(!events.is_empty(), "enabled run recorded nothing");
    let span_paths: Vec<&str> =
        events.iter().filter(|e| e.kind == "span").map(|e| e.name.as_str()).collect();
    for expected in [
        "pipeline.fit",
        "pipeline.fit/pipeline.adaptation",
        "pipeline.fit/pipeline.augmentation",
        "pipeline.fit/pipeline.meta_learning",
        "pipeline.fit/pipeline.meta_learning/maml.meta_train",
    ] {
        assert!(span_paths.contains(&expected), "missing span {expected}; got {span_paths:?}");
    }
    assert!(
        events.iter().any(|e| e.kind == "event" && e.name == "dual_cvae.epoch"),
        "missing Dual-CVAE per-epoch loss events"
    );
    assert!(
        events.iter().any(|e| e.kind == "event" && e.name == "maml.epoch"),
        "missing MAML per-epoch events"
    );

    // And the event stream must serialise to valid JSONL-ish lines.
    for e in events.iter().take(5) {
        let line = e.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"kind\""), "{line}");
    }
}

#[test]
fn disabled_pipeline_emits_no_span_aggregates() {
    let _guard = metadpa::obs::test_lock();
    metadpa::obs::disable();
    metadpa::obs::span::reset_aggregates();
    let _ = run_pipeline(6);
    assert!(
        metadpa::obs::span::aggregate_snapshot().is_empty(),
        "disabled runs must not touch the span aggregate table"
    );
}

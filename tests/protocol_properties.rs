//! Property-based integration tests of the evaluation protocol across
//! crates: for arbitrary seeds, the protocol must stay leak-free and the
//! metric machinery consistent with the rankings the models produce.
//!
//! The randomized `proptest` suite is opt-in (`--features proptest`): the
//! build environment is offline, so the `proptest` crate cannot be a
//! default dev-dependency. To run it, restore `proptest = "1"` under
//! `[dev-dependencies]` and enable the feature. The `deterministic` module
//! below always compiles and checks the same invariants at fixed seeds.

use metadpa::core::eval::{evaluate_scenario_at_ks, Recommender};
use metadpa::data::domain::{Domain, World};
use metadpa::data::generator::generate_world;
use metadpa::data::presets::tiny_world;
use metadpa::data::splits::{Scenario, ScenarioKind, SplitConfig, Splitter};
use metadpa::data::task::Task;
use metadpa::tensor::Matrix;

/// A deterministic content-similarity scorer: no training, but a real
/// ranking function — cheap enough to run under proptest.
struct CosineScorer;

impl Recommender for CosineScorer {
    fn name(&self) -> String {
        "CosineScorer".into()
    }
    fn fit(&mut self, _world: &World, _scenario: &Scenario) {}
    fn fine_tune(&mut self, _tasks: &[Task], _domain: &Domain) {}
    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let u = domain.user_content.row(user);
        items
            .iter()
            .map(|&i| metadpa::tensor::stats::cosine(u, domain.item_content.row(i)))
            .collect()
    }
    fn snapshot_state(&mut self) -> Vec<Matrix> {
        Vec::new()
    }
    fn restore_state(&mut self, _state: &[Matrix]) {}
}

const SEEDS: [u64; 4] = [0, 17, 123, 499];

mod deterministic {
    use super::*;

    /// For any seed: cutoff metrics are monotone in k for a real scorer,
    /// and AUC is cutoff-free (identical across the k sweep).
    #[test]
    fn metrics_monotone_in_k_for_any_world() {
        for seed in SEEDS {
            let world = generate_world(&tiny_world(seed));
            let splitter =
                Splitter::new(&world.target, SplitConfig { seed, ..SplitConfig::default() });
            let scenario = splitter.scenario(ScenarioKind::Warm);
            let ks: Vec<usize> = (1..=10).collect();
            let summaries = evaluate_scenario_at_ks(&mut CosineScorer, &world, &scenario, &ks);
            for pair in summaries.windows(2) {
                assert!(pair[1].hr >= pair[0].hr);
                assert!(pair[1].ndcg >= pair[0].ndcg);
                assert!((pair[1].auc - pair[0].auc).abs() < 1e-6);
            }
        }
    }

    /// Content carries preference signal by construction: the untrained
    /// cosine scorer must beat chance AUC on the warm scenario (sanity of
    /// the generator's content/preference coupling).
    #[test]
    fn content_signal_exists_for_any_seed() {
        for seed in SEEDS {
            let world = generate_world(&tiny_world(seed));
            let splitter =
                Splitter::new(&world.target, SplitConfig { seed, ..SplitConfig::default() });
            let scenario = splitter.scenario(ScenarioKind::Warm);
            let s =
                evaluate_scenario_at_ks(&mut CosineScorer, &world, &scenario, &[10]).pop().unwrap();
            assert!(s.auc > 0.5, "cosine AUC {} at seed {seed}", s.auc);
        }
    }

    /// Cold-start support sets never contain the held-out positive, for
    /// any seed and any scenario.
    #[test]
    fn supports_never_contain_the_eval_positive() {
        for seed in SEEDS {
            let world = generate_world(&tiny_world(seed));
            let splitter =
                Splitter::new(&world.target, SplitConfig { seed, ..SplitConfig::default() });
            for kind in [ScenarioKind::ColdUser, ScenarioKind::ColdItem, ScenarioKind::ColdUserItem]
            {
                let scenario = splitter.scenario(kind);
                for e in &scenario.eval {
                    let task = scenario
                        .finetune_tasks
                        .iter()
                        .find(|t| t.user == e.user)
                        .expect("support task per eval user");
                    assert!(task.support.iter().all(|&(i, _)| i != e.positive));
                }
            }
        }
    }

    /// Scenario construction commutes with itself: two Splitter instances
    /// with the same seed produce identical scenarios even across
    /// different orderings of scenario requests.
    #[test]
    fn splits_are_order_independent() {
        for seed in SEEDS {
            let world = generate_world(&tiny_world(seed));
            let cfg = SplitConfig { seed, ..SplitConfig::default() };
            let a = {
                let sp = Splitter::new(&world.target, cfg.clone());
                let warm = sp.scenario(ScenarioKind::Warm);
                let cu = sp.scenario(ScenarioKind::ColdUser);
                (warm, cu)
            };
            let b = {
                let sp = Splitter::new(&world.target, cfg);
                let cu = sp.scenario(ScenarioKind::ColdUser);
                let warm = sp.scenario(ScenarioKind::Warm);
                (warm, cu)
            };
            assert_eq!(a.0.eval, b.0.eval);
            assert_eq!(a.1.eval, b.1.eval);
        }
    }
}

#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Cutoff metrics are monotone in k; AUC is cutoff-free.
        #[test]
        fn metrics_monotone_in_k_for_any_world(seed in 0u64..500) {
            let world = generate_world(&tiny_world(seed));
            let splitter = Splitter::new(
                &world.target,
                SplitConfig { seed, ..SplitConfig::default() },
            );
            let scenario = splitter.scenario(ScenarioKind::Warm);
            let ks: Vec<usize> = (1..=10).collect();
            let summaries = evaluate_scenario_at_ks(&mut CosineScorer, &world, &scenario, &ks);
            for pair in summaries.windows(2) {
                prop_assert!(pair[1].hr >= pair[0].hr);
                prop_assert!(pair[1].ndcg >= pair[0].ndcg);
                prop_assert!((pair[1].auc - pair[0].auc).abs() < 1e-6);
            }
        }

        /// The untrained cosine scorer must beat chance AUC on warm.
        #[test]
        fn content_signal_exists_for_any_seed(seed in 0u64..500) {
            let world = generate_world(&tiny_world(seed));
            let splitter = Splitter::new(
                &world.target,
                SplitConfig { seed, ..SplitConfig::default() },
            );
            let scenario = splitter.scenario(ScenarioKind::Warm);
            let s = evaluate_scenario_at_ks(&mut CosineScorer, &world, &scenario, &[10])
                .pop()
                .unwrap();
            prop_assert!(s.auc > 0.5, "cosine AUC {} at seed {seed}", s.auc);
        }

        /// Cold-start support sets never contain the held-out positive.
        #[test]
        fn supports_never_contain_the_eval_positive(seed in 0u64..500) {
            let world = generate_world(&tiny_world(seed));
            let splitter = Splitter::new(
                &world.target,
                SplitConfig { seed, ..SplitConfig::default() },
            );
            for kind in [ScenarioKind::ColdUser, ScenarioKind::ColdItem, ScenarioKind::ColdUserItem] {
                let scenario = splitter.scenario(kind);
                for e in &scenario.eval {
                    let task = scenario
                        .finetune_tasks
                        .iter()
                        .find(|t| t.user == e.user)
                        .expect("support task per eval user");
                    prop_assert!(task.support.iter().all(|&(i, _)| i != e.positive));
                }
            }
        }

        /// Two same-seeded Splitters agree regardless of request order.
        #[test]
        fn splits_are_order_independent(seed in 0u64..500) {
            let world = generate_world(&tiny_world(seed));
            let cfg = SplitConfig { seed, ..SplitConfig::default() };
            let a = {
                let sp = Splitter::new(&world.target, cfg.clone());
                let warm = sp.scenario(ScenarioKind::Warm);
                let cu = sp.scenario(ScenarioKind::ColdUser);
                (warm, cu)
            };
            let b = {
                let sp = Splitter::new(&world.target, cfg);
                let cu = sp.scenario(ScenarioKind::ColdUser);
                let warm = sp.scenario(ScenarioKind::Warm);
                (warm, cu)
            };
            prop_assert_eq!(a.0.eval, b.0.eval);
            prop_assert_eq!(a.1.eval, b.1.eval);
        }
    }
}

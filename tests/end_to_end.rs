//! Cross-crate integration tests: the full MetaDPA pipeline against
//! baselines on a synthetic world, exercised through the umbrella crate's
//! public API exactly as a downstream user would.

use metadpa::baselines::full_roster;
use metadpa::core::eval::{evaluate_scenario, Recommender};
use metadpa::core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa::data::generator::generate_world;
use metadpa::data::presets::tiny_world;
use metadpa::data::splits::{Scenario, ScenarioKind, SplitConfig, Splitter};

fn scenarios(world: &metadpa::data::domain::World, seed: u64) -> Vec<Scenario> {
    let splitter = Splitter::new(&world.target, SplitConfig { seed, ..SplitConfig::default() });
    ScenarioKind::ALL.iter().map(|&k| splitter.scenario(k)).collect()
}

#[test]
fn metadpa_beats_the_meta_learning_baseline_on_cold_start() {
    // The paper's central claim (RQ1/RQ2): diverse preference augmentation
    // lifts the meta-learner above a MeLU-style baseline trained on the
    // sparse original tasks alone. Single tiny-world splits are noisy
    // (the paper itself establishes this claim with a 30-split Wilcoxon
    // test, reproduced in `exp_significance`), so the test asserts on the
    // mean cold-user AUC across three independent worlds. The seed triple
    // is pinned to the in-tree xoshiro256++ streams; re-pin it if the RNG
    // algorithm ever changes.
    let cu_idx = ScenarioKind::ALL.iter().position(|&k| k == ScenarioKind::ColdUser).unwrap();
    let mut dpa_total = 0.0f32;
    let mut melu_total = 0.0f32;
    for seed in [1u64, 2, 3] {
        let world = generate_world(&tiny_world(seed));
        let scenarios = scenarios(&world, seed);

        let mut dpa = MetaDpa::new({
            let mut c = MetaDpaConfig::fast();
            c.seed = seed;
            c
        });
        dpa.fit(&world, &scenarios[0]);
        dpa_total += evaluate_scenario(&mut dpa, &world, &scenarios[cu_idx], 10).auc;

        let mut melu =
            metadpa::baselines::Melu::new(metadpa::baselines::melu::MeluConfig::preset(true), seed);
        melu.fit(&world, &scenarios[0]);
        melu_total += evaluate_scenario(&mut melu, &world, &scenarios[cu_idx], 10).auc;
    }
    let dpa_mean = dpa_total / 3.0;
    let melu_mean = melu_total / 3.0;
    assert!(dpa_mean > 0.5, "MetaDPA mean C-U AUC {dpa_mean} must beat chance");
    assert!(dpa_mean > melu_mean, "MetaDPA mean C-U AUC {dpa_mean} must beat MeLU {melu_mean}");
}

#[test]
fn every_roster_method_completes_all_scenarios_with_valid_metrics() {
    let world = generate_world(&tiny_world(8));
    let scenarios = scenarios(&world, 8);
    let mut roster = full_roster(8, true);
    for rec in &mut roster {
        rec.fit(&world, &scenarios[0]);
        for s in &scenarios {
            let summary = evaluate_scenario(rec.as_mut(), &world, s, 10);
            assert!(summary.count > 0, "{} produced no eval instances", rec.name());
            for v in [summary.hr, summary.mrr, summary.ndcg, summary.auc] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{} metric {v} out of range on {:?}",
                    rec.name(),
                    s.kind
                );
            }
            // HR dominates NDCG and MRR by construction.
            assert!(summary.hr + 1e-6 >= summary.ndcg, "{}", rec.name());
            assert!(summary.hr + 1e-6 >= summary.mrr, "{}", rec.name());
        }
    }
}

#[test]
fn evaluation_does_not_mutate_the_fitted_model() {
    // The harness promises snapshot/restore around fine-tuning: evaluating
    // a cold scenario twice must give identical numbers, and a warm
    // evaluation after a cold one must match a warm evaluation before it.
    let world = generate_world(&tiny_world(9));
    let scenarios = scenarios(&world, 9);
    let mut dpa = MetaDpa::new({
        let mut c = MetaDpaConfig::fast();
        c.seed = 9;
        c
    });
    dpa.fit(&world, &scenarios[0]);

    let warm_before = evaluate_scenario(&mut dpa, &world, &scenarios[0], 10);
    let cold_a = evaluate_scenario(&mut dpa, &world, &scenarios[1], 10);
    let cold_b = evaluate_scenario(&mut dpa, &world, &scenarios[1], 10);
    let warm_after = evaluate_scenario(&mut dpa, &world, &scenarios[0], 10);
    assert_eq!(cold_a, cold_b, "cold evaluation must be repeatable");
    assert_eq!(warm_before, warm_after, "cold evaluation must not leak into warm state");
}

#[test]
fn full_pipeline_is_deterministic_per_seed() {
    let run = || {
        let world = generate_world(&tiny_world(10));
        let scenarios = scenarios(&world, 10);
        let mut dpa = MetaDpa::new({
            let mut c = MetaDpaConfig::fast();
            c.seed = 10;
            c
        });
        dpa.fit(&world, &scenarios[0]);
        evaluate_scenario(&mut dpa, &world, &scenarios[2], 10)
    };
    assert_eq!(run(), run());
}

#[test]
fn augmentation_produces_per_source_diversity() {
    let world = generate_world(&tiny_world(11));
    let scenarios = scenarios(&world, 11);
    let mut dpa = MetaDpa::new({
        let mut c = MetaDpaConfig::fast();
        c.seed = 11;
        c
    });
    dpa.fit(&world, &scenarios[0]);
    let d = dpa.diversity();
    assert_eq!(d.k, world.n_sources());
    assert!(d.mean_pairwise_distance > 0.0, "distinct sources must generate distinct ratings");
    assert!(d.mean_confidence > 0.0, "generator must not be stuck at 0.5");
}

//! The offline analysis half of the observability layer must agree with
//! the live half: a `Report` rebuilt from a recorded JSONL stream has to
//! reproduce the in-process span aggregates exactly, `obs-report diff` of
//! a stream against itself has to be all-zero, and the BENCH regression
//! gate has to pass against a faithful baseline and fail against a
//! tightened one.

use std::sync::Arc;

use metadpa::obs::diff::{check, StreamDiff};
use metadpa::obs::report::{BenchBlock, BenchReport, HostInfo, Report};
use metadpa::obs::stream::read_file;

/// A small instrumented workload: nested spans with deterministic structure
/// plus counter/histogram traffic, so the stream carries every record kind
/// the report consumes.
fn workload() {
    for i in 0..3u64 {
        let _outer = metadpa::obs::span!("rt.outer");
        metadpa::obs::counter_add!("rt.widgets", 10);
        {
            let _inner = metadpa::obs::span!("rt.inner");
            metadpa::obs::histogram_observe!("rt.latency", 100 + i);
            std::hint::black_box((0..500).sum::<u64>());
        }
    }
}

fn record_run(path: &std::path::Path) {
    let file = metadpa::obs::FileRecorder::create(path.to_str().unwrap()).expect("create stream");
    metadpa::obs::enable(Arc::new(file));
    metadpa::obs::span::reset_aggregates();
    metadpa::obs::metrics::reset();
    {
        let session = metadpa::obs::ObsSession::new(true);
        workload();
        drop(session); // emits the metric snapshot and flushes the sink
    }
}

#[test]
fn stream_report_matches_live_aggregates_and_self_diff_is_zero() {
    let _guard = metadpa::obs::test_lock();
    let path = std::env::temp_dir().join(format!("obs_rt_{}.jsonl", std::process::id()));
    record_run(&path);

    // Snapshot the live aggregates before anything else resets them.
    let live = metadpa::obs::span::aggregate_snapshot();
    metadpa::obs::disable();

    let events = read_file(path.to_str().unwrap()).expect("parse recorded stream");
    let report = Report::from_events(&events);

    // Every live span path must appear in the stream-derived report with
    // identical completion counts and identical inclusive time — both sides
    // sum the same per-completion dur_ns observations.
    assert!(!live.is_empty(), "workload produced no span aggregates");
    for (live_path, stat) in &live {
        let derived = report
            .spans
            .get(live_path.as_str())
            .unwrap_or_else(|| panic!("path {live_path} missing from stream report"));
        assert_eq!(derived.count, stat.count, "{live_path}: completion counts differ");
        assert_eq!(
            derived.inclusive_ns, stat.total_ns,
            "{live_path}: stream-derived inclusive time differs from live aggregate"
        );
    }
    assert_eq!(report.spans.len(), live.len(), "report has span paths the live table lacks");

    // Exclusive time: the parent's self time is its inclusive minus the
    // nested child's inclusive.
    let outer = &report.spans["rt.outer"];
    let inner = &report.spans["rt.outer/rt.inner"];
    assert_eq!(outer.exclusive_ns, outer.inclusive_ns - inner.inclusive_ns);
    assert_eq!(inner.exclusive_ns, inner.inclusive_ns, "leaf span: exclusive == inclusive");

    // The metric snapshot embedded in the stream must reproduce the
    // workload's counter exactly.
    let widgets = report.metrics.get("rt.widgets").expect("counter missing from stream");
    assert_eq!(widgets.value, 30.0);
    assert!(report.metrics.contains_key("rt.latency"), "histogram missing from stream");

    // A stream diffed against itself is all-zero.
    let self_diff = StreamDiff::between(&report, &report);
    assert!(self_diff.is_zero(), "self-diff must be zero:\n{}", self_diff.render());

    let _ = std::fs::remove_file(&path);
}

fn bench_fixture(p50_ns: u64) -> BenchReport {
    BenchReport {
        git_rev: "fixture".into(),
        scenario: "rt.gate".into(),
        host: HostInfo::current(),
        requests: 0,
        run_id: String::new(),
        blocks: vec![BenchBlock {
            name: "rt.block".into(),
            iters: 10,
            p50_ns,
            p90_ns: p50_ns + p50_ns / 10,
            mean_ns: p50_ns as f64,
            flops: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            server_p99_ns: 0,
        }],
    }
}

#[test]
fn regression_gate_passes_against_itself_and_fails_against_tightened_baseline() {
    let current = bench_fixture(1_000_000);

    // Fresh baseline (identical numbers): no regressions.
    let vs_self = check(&current, &current, 0.15);
    assert_eq!(vs_self.regressions, 0, "identical runs must pass the gate");
    assert!(vs_self.hardware_match);

    // Tightened fixture (baseline claims half the time): the same current
    // run is now >15% over and must be flagged.
    let tightened = bench_fixture(500_000);
    let vs_tightened = check(&current, &tightened, 0.15);
    assert!(
        vs_tightened.regressions > 0,
        "a 2x slowdown must trip the 15% gate:\n{}",
        vs_tightened.render(0.15)
    );

    // And the BENCH file itself survives a serialisation round trip.
    let parsed = BenchReport::from_json(&current.to_json()).expect("BENCH round trip");
    assert_eq!(parsed, current);
}

//! Request-scoped tracing contracts, end to end: (1) switching
//! observability on must never change a single response byte — the trace
//! rides alongside the request, it is not allowed to perturb it; (2) with
//! a file recorder attached, every request served over real sockets
//! appears in the trace exactly once, carries a unique request ID, and its
//! span tree reaches all the way down to the ranking kernels.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use metadpa_core::artifact::Artifact;
use metadpa_core::eval::Recommender;
use metadpa_core::{MetaDpa, MetaDpaConfig};
use metadpa_data::generator::generate_world;
use metadpa_data::presets::tiny_world;
use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
use metadpa_obs::recorder::FileRecorder;
use metadpa_obs::stream::read_file_lenient;
use metadpa_serve::http::{serve, Handler, Request, ServerConfig};
use metadpa_serve::{router, Engine};

fn export_artifact(seed: u64) -> Artifact {
    let world = generate_world(&tiny_world(seed));
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    model.fit(&world, &warm);
    model.export_artifact(&world)
}

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("metadpa_trace_{tag}_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .to_string()
}

/// The canonical request sequence: every route, every serve state, and the
/// interesting error paths. `/metrics` is deliberately absent — its body
/// legitimately grows richer when observability is on.
fn request_sequence(content_dim: usize) -> Vec<(&'static str, &'static str, String)> {
    let cold = format!(r#"{{"content":[{}],"k":5}}"#, vec!["0.1"; content_dim].join(","));
    vec![
        ("GET", "/health", String::new()),
        ("POST", "/v1/recommend", r#"{"user_id":3,"k":5}"#.to_string()),
        ("POST", "/v1/adapt", r#"{"user_id":3,"support":[[0,1.0],[1,0.0]]}"#.to_string()),
        ("POST", "/v1/recommend", r#"{"user_id":3,"k":5}"#.to_string()),
        ("POST", "/v1/recommend", cold),
        ("POST", "/v1/recommend", r#"{"user_id":999999}"#.to_string()),
        ("GET", "/no/such/path", String::new()),
        ("PUT", "/v1/recommend", String::new()),
    ]
}

/// Drives the sequence straight through the router closure (no sockets —
/// this test is about response bytes, not transport).
fn drive(handler: &Handler, content_dim: usize) -> Vec<(u16, String)> {
    request_sequence(content_dim)
        .into_iter()
        .map(|(method, path, body)| {
            let req = Request {
                method: method.to_string(),
                path: path.to_string(),
                body: body.into_bytes(),
            };
            let resp = handler(&req);
            (resp.status, resp.body)
        })
        .collect()
}

#[test]
fn tracing_never_changes_a_response_byte() {
    let _guard = metadpa_obs::test_lock();
    metadpa_obs::disable();

    let artifact = export_artifact(21);
    let content_dim = artifact.user_content.cols();

    // Two engines from the same artifact: one served dark, one fully
    // traced. Fresh engines on each side so the adapt-cache state machine
    // walks the identical path.
    let dark_engine =
        Arc::new(Engine::new(artifact.clone().into_recommender().expect("recommender")));
    let dark = drive(&router(dark_engine), content_dim);

    let trace = temp_path("inert");
    metadpa_obs::enable(Arc::new(FileRecorder::create(&trace).expect("trace file")));
    let lit_engine = Arc::new(Engine::new(artifact.into_recommender().expect("recommender")));
    let lit = drive(&router(lit_engine), content_dim);
    metadpa_obs::flush();
    metadpa_obs::disable();

    let traced = read_file_lenient(&trace).expect("trace readable");
    let _ = std::fs::remove_file(&trace);

    assert_eq!(dark, lit, "enabling observability changed a response");
    // And the traced run really was traced — this is not a vacuous pass.
    let n_requests = traced.events.iter().filter(|e| e.kind == "request").count();
    assert_eq!(n_requests, dark.len(), "traced run must log one record per request");
}

fn loopback(addr: SocketAddr, method: &str, path: &str, body: &str) -> u16 {
    let mut s = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("write request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0)
}

#[test]
fn every_served_request_is_traced_once_with_spans_down_to_the_kernels() {
    let _guard = metadpa_obs::test_lock();
    metadpa_obs::disable();

    // Build the engine dark so the trace holds serving only, not training.
    let artifact = export_artifact(22);
    let content_dim = artifact.user_content.cols();
    let engine = Arc::new(Engine::new(artifact.into_recommender().expect("recommender")));

    let trace = temp_path("served");
    metadpa_obs::enable(Arc::new(FileRecorder::create(&trace).expect("trace file")));
    let server = serve(ServerConfig { workers: 2, ..ServerConfig::default() }, router(engine))
        .expect("bind");
    let addr = server.addr();
    let sequence = request_sequence(content_dim);
    let n_sent = sequence.len();
    for (method, path, body) in sequence {
        assert_ne!(loopback(addr, method, path, &body), 0, "{method} {path} got no response");
    }
    server.shutdown();
    metadpa_obs::flush();
    metadpa_obs::disable();

    let traced = read_file_lenient(&trace).expect("trace readable");
    let _ = std::fs::remove_file(&trace);
    assert!(traced.errors.is_empty(), "trace has parse errors: {:?}", traced.errors);
    assert!(traced.truncated_tail.is_none(), "flushed trace must not end mid-record");

    // Exactly one request record per request sent, each with a unique
    // nonzero request ID.
    let requests: Vec<_> = traced.events.iter().filter(|e| e.kind == "request").collect();
    assert_eq!(requests.len(), n_sent, "each request logs exactly one record");
    let mut seen = BTreeSet::new();
    for record in &requests {
        let id = record.field_u64("req").expect("request record carries a req id");
        assert!(id > 0, "request IDs start at 1");
        assert!(seen.insert(id), "request ID {id} appeared twice");
        assert!(record.field("status").is_some(), "request record carries the status");
        assert!(record.field("dur_us").is_some(), "request record carries the duration");
    }

    // The span tree descends from the handler through the engine into the
    // ranking kernels, and every level is tagged with its request ID.
    let span_reaching = |leaf: &str| {
        traced.events.iter().any(|e| {
            e.kind == "span"
                && e.name.starts_with("serve.request")
                && e.name.ends_with(leaf)
                && e.field_u64("req").is_some_and(|id| seen.contains(&id))
        })
    };
    for leaf in ["engine.recommend_user", "rank.catalogue", "kernels.score"] {
        assert!(span_reaching(leaf), "no serve.request span path reaches {leaf}");
    }
}

//! The streaming-feedback determinism contract, end to end.
//!
//! 1. Replaying a recorded feedback log against the same artifact rebuilds
//!    the adapted-parameter cache *bit-exactly* at any `METADPA_THREADS` —
//!    the serve-side extension of the training determinism contract.
//! 2. Graduation fires exactly at the configured threshold, not before.
//! 3. The θ-rewind invariant survives the whole pipeline: feedback-driven
//!    adaptation never moves the shared meta-parameters, and invalidating
//!    the cache restores the exact pre-feedback warm responses.
//! 4. A drift alert invalidates the adapted cache live, observably: the
//!    background adapter drops every entry, bumps the
//!    `serve_feedback_invalidations` counter on `/metrics`, and emits a
//!    typed `feedback.invalidation` event.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use metadpa_core::artifact::{artifact_from_learner, Artifact};
use metadpa_core::augmentation::DiversityReport;
use metadpa_core::{MamlConfig, MetaLearner, PreferenceConfig};
use metadpa_feedback::{
    read_log, replay, AdapterConfig, FeedbackAdapter, FeedbackEvent, FeedbackLog, FeedbackSink,
    GraduationConfig,
};
use metadpa_serve::engine::ServeSource;
use metadpa_serve::http::{serve, ServerConfig};
use metadpa_serve::{router_with_feedback, Engine};
use metadpa_tensor::SeededRng;

fn tiny_artifact(seed: u64) -> Artifact {
    let pref = PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] };
    let maml = MamlConfig { finetune_steps: 2, ..MamlConfig::default() };
    let mut rng = SeededRng::new(seed);
    let mut learner = MetaLearner::new(pref, maml, &mut rng);
    let user_content = rng.uniform_matrix(4, 6, -1.0, 1.0);
    let item_content = rng.uniform_matrix(9, 6, -1.0, 1.0);
    artifact_from_learner(
        &mut learner,
        "feedback-test",
        "rev".into(),
        "fp".into(),
        DiversityReport::default(),
        user_content,
        item_content,
        format!("run-{seed:016x}-00000000feedbac4-1"),
    )
}

fn fresh_engine(seed: u64) -> Engine {
    Engine::new(tiny_artifact(seed).into_recommender().expect("valid artifact"))
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("metadpa_fb_replay_{tag}_{}.jsonl", std::process::id()))
}

/// The canonical event sequence (threshold 3): user 1 crosses and then
/// refreshes twice, user 2 crosses exactly, user 3 stays short.
fn write_log(path: &PathBuf, run_id: &str) -> Vec<FeedbackEvent> {
    let log = FeedbackLog::create(path, run_id, 1 << 20).expect("create log");
    for (user, item, label) in [
        (1usize, 0usize, 1.0f32),
        (2, 4, 1.0),
        (1, 5, 0.0),
        (3, 1, 1.0),
        (1, 2, 1.0), // user 1 graduates here
        (2, 6, 0.0),
        (3, 7, 0.0),
        (1, 8, 1.0), // refresh 1
        (2, 3, 1.0), // user 2 graduates here
        (1, 6, 0.0), // refresh 2
    ] {
        log.append(user, item, label);
    }
    log.flush();
    let read = read_log(path).expect("read back");
    assert!(read.interior_errors.is_empty(), "{:?}", read.interior_errors);
    assert_eq!(read.events.len(), 10);
    read.events
}

/// Every adapted matrix of every cached user, flattened to exact bits.
fn cache_bits(engine: &Engine, users: &[usize]) -> Vec<(usize, Vec<Vec<u32>>)> {
    users
        .iter()
        .filter_map(|&u| {
            engine.adapted_params(u).map(|params| {
                let bits = params
                    .iter()
                    .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
                    .collect();
                (u, bits)
            })
        })
        .collect()
}

fn ranked_bits(list: &[(usize, f32)]) -> Vec<(usize, u32)> {
    list.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

#[test]
fn replaying_a_log_rebuilds_the_cache_bit_exactly_at_any_thread_count() {
    let path = temp_path("bitexact");
    let events = write_log(&path, "run-bitexact");
    let cfg = GraduationConfig::with_threshold(3);

    let mut per_threads = Vec::new();
    for threads in [1usize, 2, 7] {
        let engine = fresh_engine(41);
        let outcome = metadpa_tensor::pool::with_threads(threads, || replay(&events, cfg, &engine));
        assert_eq!(outcome.events, 10);
        assert_eq!(outcome.graduations, 2, "users 1 and 2 cross the threshold");
        assert_eq!(outcome.refreshes, 2, "user 1 re-adapts twice");
        assert_eq!(outcome.errors, 0);
        assert!(engine.adapted_params(3).is_none(), "user 3 never graduates");
        let lists: Vec<_> = [1usize, 2]
            .iter()
            .map(|&u| {
                let (list, source) = metadpa_tensor::pool::with_threads(threads, || {
                    engine.recommend_user(u, 5).expect("graduated user serves")
                });
                assert_eq!(source, ServeSource::AdaptedCache);
                ranked_bits(&list)
            })
            .collect();
        per_threads.push((threads, cache_bits(&engine, &[1, 2, 3]), lists));
    }
    let (_, base_cache, base_lists) = &per_threads[0];
    assert_eq!(base_cache.len(), 2, "exactly users 1 and 2 are cached");
    for (threads, cache, lists) in &per_threads[1..] {
        assert_eq!(cache, base_cache, "adapted cache drifted at {threads} threads");
        assert_eq!(lists, base_lists, "served lists drifted at {threads} threads");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn graduation_fires_exactly_at_the_threshold() {
    let path = temp_path("threshold");
    let events = write_log(&path, "run-threshold");
    let user1: Vec<FeedbackEvent> = events.iter().filter(|e| e.user == 1).cloned().collect();
    let cfg = GraduationConfig::with_threshold(3);

    // One event short of the threshold: nothing may be installed.
    let engine = fresh_engine(42);
    let below = replay(&user1[..2], cfg, &engine);
    assert_eq!((below.graduations, below.refreshes), (0, 0));
    assert_eq!(engine.cached_adaptations(), 0, "no adaptation below the threshold");
    let (_, source) = engine.recommend_user(1, 5).expect("warm serve");
    assert_eq!(source, ServeSource::Warm);

    // The third event is the crossing — exactly one graduation.
    let engine = fresh_engine(42);
    let at = replay(&user1[..3], cfg, &engine);
    assert_eq!((at.graduations, at.refreshes), (1, 0));
    assert_eq!(engine.cached_adaptations(), 1);
    let (_, source) = engine.recommend_user(1, 5).expect("adapted serve");
    assert_eq!(source, ServeSource::AdaptedCache);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn feedback_adaptation_never_moves_theta_and_invalidation_restores_warm() {
    let path = temp_path("rewind");
    let events = write_log(&path, "run-rewind");
    let engine = fresh_engine(43);

    // Warm responses before any feedback touches the engine.
    let warm_user1 = ranked_bits(&engine.recommend_user(1, 5).expect("warm 1").0);
    let warm_user0 = ranked_bits(&engine.recommend_user(0, 5).expect("warm 0").0);

    let outcome = replay(&events, GraduationConfig::with_threshold(3), &engine);
    assert_eq!(outcome.graduations, 2);

    // A user no feedback event ever named still serves the identical
    // bits: the inner loop rewound θ after every adaptation.
    let after_user0 = ranked_bits(&engine.recommend_user(0, 5).expect("untouched user").0);
    assert_eq!(after_user0, warm_user0, "feedback adaptation leaked into θ");

    // Dropping the cache restores the graduated user's exact warm list.
    assert_eq!(engine.invalidate_adapted(), 2);
    let (list, source) = engine.recommend_user(1, 5).expect("back to warm");
    assert_eq!(source, ServeSource::Warm);
    assert_eq!(ranked_bits(&list), warm_user1, "invalidation must restore warm serving");
    let _ = std::fs::remove_file(&path);
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("write");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    let status = out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0);
    (status, out.split("\r\n\r\n").nth(1).unwrap_or("").to_string())
}

fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let mut tokens = line.split_whitespace();
        (tokens.next() == Some(name)).then(|| tokens.next()?.parse().ok())?
    })
}

#[test]
fn a_drift_alert_invalidates_the_adapted_cache_observably() {
    let _guard = metadpa_obs::test_lock();
    let recorder = Arc::new(metadpa_obs::MemoryRecorder::default());
    metadpa_obs::enable(Arc::clone(&recorder) as Arc<dyn metadpa_obs::Recorder>);
    metadpa_obs::metrics::reset();

    // Poison the exported fingerprint: every live score now sits far from
    // the sketched training quantiles, so any scored traffic raises the
    // drift alert.
    let mut artifact = tiny_artifact(44);
    let run_id = artifact.meta.run_id.clone();
    artifact.meta.score_fingerprint.quantiles = vec![1e6; 9];
    let engine = Arc::new(Engine::new(artifact.into_recommender().expect("poisoned artifact")));

    let path = temp_path("drift");
    let log = Arc::new(FeedbackLog::create(&path, &run_id, 1 << 20).expect("create log"));
    let cfg = AdapterConfig {
        graduation: GraduationConfig::with_threshold(3),
        poll_interval: Duration::from_millis(5),
    };
    let adapter =
        FeedbackAdapter::spawn(log.path(), cfg, Arc::clone(&engine) as Arc<dyn FeedbackSink>);
    let server = serve(
        ServerConfig { workers: 2, ..ServerConfig::default() },
        router_with_feedback(Arc::clone(&engine), Some(Arc::clone(&log))),
    )
    .expect("bind");
    let addr = server.addr();

    // Graduate user 1 through the real ingestion path. No scoring has
    // happened yet, so the drift alert is still down.
    for item in [0, 5, 2] {
        let body = format!(r#"{{"user_id":1,"item_id":{item}}}"#);
        let (status, resp) = http(addr, "POST", "/v1/feedback", &body);
        assert_eq!(status, 200, "{resp}");
    }
    log.flush();
    assert!(adapter.wait_for_seq(3, Duration::from_secs(10)), "adapter must drain the log");
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.cached_adaptations() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(engine.cached_adaptations(), 1, "user 1 graduated into the cache");
    assert_eq!(adapter.stats().invalidations(), 0, "no drift yet, no invalidation");

    // Scored traffic fills the drift window with scores nowhere near the
    // poisoned quantiles; the alert rises and the adapter reacts.
    let (status, _) = http(addr, "POST", "/v1/recommend", r#"{"user_id":0,"k":3}"#);
    assert_eq!(status, 200);
    assert!(engine.drift_alerting(), "poisoned fingerprint must raise the alert");
    while adapter.stats().invalidations() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(adapter.stats().invalidations(), 1, "drift edge drops the one cached entry");
    assert_eq!(engine.cached_adaptations(), 0, "the adapted cache is empty after the alert");

    // The reaction is observable from the outside: /metrics carries the
    // counter, the event stream carries the typed record.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metric_value(&metrics, "serve_feedback_invalidations"), Some(1.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "serve_feedback_graduations"), Some(1.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "serve_adapt_cache_size"), Some(0.0), "{metrics}");
    let events = recorder.events();
    let invalidation = events
        .iter()
        .find(|e| e.name == "feedback.invalidation")
        .expect("typed feedback.invalidation event");
    assert!(
        invalidation.fields.iter().any(|(k, v)| *k == "entries" && format!("{v:?}").contains('1')),
        "invalidation event carries the dropped-entry count: {invalidation:?}"
    );

    server.shutdown();
    adapter.stop();
    metadpa_obs::disable();
    let _ = std::fs::remove_file(&path);
}

//! A look inside Block 1 and Block 2: multi-source domain adaptation with
//! Dual-CVAEs, and the diverse preference augmentation it enables.
//!
//! Trains one Dual-CVAE per source, reports the per-term losses of the
//! Eq. 8 objective as they fall, then generates the k diverse rating
//! matrices and measures how much they actually disagree — the quantity
//! the ME constraint exists to increase.
//!
//! ```sh
//! cargo run --release --example multi_domain_transfer
//! ```

use metadpa::core::adaptation::{AdapterTrainConfig, MultiSourceAdapter};
use metadpa::core::augmentation::diversity_report;
use metadpa::core::dual_cvae::DualCvaeConfig;
use metadpa::data::adaptation::{build_adaptation_pairs, AdaptationConfig};
use metadpa::data::generator::generate_world;
use metadpa::data::presets::cds_world;
use metadpa::tensor::SeededRng;

fn main() {
    let world = generate_world(&cds_world(2022));
    println!(
        "target '{}' with sources: {}",
        world.target.name,
        world.sources.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", ")
    );

    let pairs = build_adaptation_pairs(&world, &AdaptationConfig::default());
    for p in &pairs {
        println!(
            "  pair {} -> {}: {} shared users after filtering ({} train / {} eval)",
            p.source_name,
            world.target.name,
            p.n_shared(),
            p.train_rows.len(),
            p.eval_rows.len()
        );
    }

    let mut rng = SeededRng::new(7);
    let mut adapter = MultiSourceAdapter::new(
        &pairs,
        world.target.user_content.cols(),
        DualCvaeConfig::default(),
        AdapterTrainConfig { epochs: 20, ..AdapterTrainConfig::default() },
        &mut rng,
    );

    println!("\ntraining {} Dual-CVAEs...", adapter.n_sources());
    let reports = adapter.train(&pairs);
    for r in &reports {
        let first = r.train_losses.first().expect("at least one epoch");
        let last = r.train_losses.last().expect("at least one epoch");
        println!(
            "  {:<12} reconstruction {:.3} -> {:.3} | cross {:.3} -> {:.3} | MDI {:.3} -> {:.3} | ME {:.3} -> {:.3}",
            r.source_name,
            first.reconstruction,
            last.reconstruction,
            first.cross_reconstruction,
            last.cross_reconstruction,
            first.mdi,
            last.mdi,
            first.me,
            last.me,
        );
        println!("  {:<12} held-out reconstruction {:.3}", "", r.eval_losses.reconstruction);
    }

    println!("\ngenerating diverse ratings from target content alone (red path of Fig. 1)...");
    let generated = adapter.generate_diverse_ratings(&world.target.user_content);
    let report = diversity_report(&generated);
    println!(
        "  k = {} rating matrices of shape {} x {}",
        report.k,
        world.target.n_users(),
        world.target.n_items()
    );
    println!(
        "  mean pairwise distance between the k generations per user: {:.4}",
        report.mean_pairwise_distance
    );
    println!("  mean confidence (|rating - 0.5|): {:.4}", report.mean_confidence);

    // Show one user's generated preferences across sources.
    let user = 0;
    println!("\nuser {user}: top-5 generated items per source (diverse preferences):");
    for (g, pair) in generated.iter().zip(pairs.iter()) {
        let mut ranked: Vec<(usize, f32)> = g.row(user).iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let top: Vec<String> = ranked.iter().take(5).map(|(i, v)| format!("{i}:{v:.2}")).collect();
        println!("  via {:<12} {}", pair.source_name, top.join("  "));
    }
}

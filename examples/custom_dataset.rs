//! Running MetaDPA on your own data: export a world to the TSV interchange
//! format, reload it, and train — the same path a downstream user takes
//! with real interaction logs and review embeddings.
//!
//! Layout written/read by `metadpa::data::io` (one directory per domain):
//!
//! ```text
//! <dir>/target/{interactions,user_content,item_content}.tsv
//! <dir>/sources/<name>/...          <dir>/shared_<name>.tsv
//! ```
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use metadpa::core::eval::{evaluate_scenario, Recommender};
use metadpa::core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa::data::generator::generate_world;
use metadpa::data::io::{read_world, write_world};
use metadpa::data::presets::tiny_world;
use metadpa::data::splits::{ScenarioKind, SplitConfig, Splitter};

fn main() -> std::io::Result<()> {
    // Stand-in for "your data": a generated world, exported to TSV. With
    // real data you produce these files yourself (dense 0..n ids, one
    // dense content row per user/item) and skip straight to `read_world`.
    let dir = std::env::temp_dir().join("metadpa_custom_dataset_example");
    let _ = std::fs::remove_dir_all(&dir);
    let exported = generate_world(&tiny_world(2022));
    write_world(&exported, &dir)?;
    println!("wrote TSV world to {}", dir.display());
    for entry in std::fs::read_dir(&dir)? {
        println!("  {}", entry?.path().display());
    }

    // Load it back as a user would.
    let world = read_world("MyCatalogue", &dir)?;
    println!(
        "\nloaded '{}': {} users x {} items, {} source domains",
        world.target.name,
        world.target.n_users(),
        world.target.n_items(),
        world.n_sources()
    );

    // Train and evaluate cold-start users.
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let cold_user = splitter.scenario(ScenarioKind::ColdUser);
    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    model.fit(&world, &warm);
    let metrics = evaluate_scenario(&mut model, &world, &cold_user, 10);
    println!(
        "\ncold-start users: HR@10 {:.4}, NDCG@10 {:.4}, AUC {:.4} over {} instances",
        metrics.hr, metrics.ndcg, metrics.auc, metrics.count
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

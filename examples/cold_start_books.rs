//! Cold-start evaluation on the Books world: MetaDPA against a meta-learning
//! baseline (MeLU) and a pure-CF baseline (NeuMF) under all four of the
//! paper's problem settings.
//!
//! This is a miniature of Table III — run `cargo run --release -p
//! metadpa-bench --bin exp_table3` for the full eight-method comparison.
//!
//! ```sh
//! cargo run --release --example cold_start_books
//! ```

use metadpa::baselines::melu::{Melu, MeluConfig};
use metadpa::baselines::neumf::{NeuMf, NeuMfConfig};
use metadpa::core::eval::{evaluate_scenario, Recommender};
use metadpa::core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa::data::generator::generate_world;
use metadpa::data::presets::books_world;
use metadpa::data::splits::{ScenarioKind, SplitConfig, Splitter};

fn main() {
    let seed = 2022;
    println!("generating the Books world...");
    let world = generate_world(&books_world(seed));
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let scenarios: Vec<_> = ScenarioKind::ALL.iter().map(|&k| splitter.scenario(k)).collect();

    let mut methods: Vec<Box<dyn Recommender>> = vec![
        Box::new(NeuMf::new(NeuMfConfig::preset(true), seed)),
        Box::new(Melu::new(MeluConfig::preset(true), seed)),
        Box::new(MetaDpa::new({
            let mut c = MetaDpaConfig::fast();
            c.seed = seed;
            c
        })),
    ];

    println!("\n{:<12} {:>10} {:>10} {:>10} {:>10}", "method", "C-U", "C-I", "C-UI", "Warm");
    println!("{}", "-".repeat(56));
    for method in &mut methods {
        method.fit(&world, &scenarios[0]);
        let ndcg_of = |m: &mut Box<dyn Recommender>, kind: ScenarioKind| {
            let idx = ScenarioKind::ALL.iter().position(|&k| k == kind).unwrap();
            evaluate_scenario(m.as_mut(), &world, &scenarios[idx], 10).ndcg
        };
        let cu = ndcg_of(method, ScenarioKind::ColdUser);
        let ci = ndcg_of(method, ScenarioKind::ColdItem);
        let cui = ndcg_of(method, ScenarioKind::ColdUserItem);
        let warm = ndcg_of(method, ScenarioKind::Warm);
        println!("{:<12} {:>10.4} {:>10.4} {:>10.4} {:>10.4}", method.name(), cu, ci, cui, warm);
    }
    println!("\n(NDCG@10; higher is better. Expect MetaDPA > MeLU > NeuMF under cold-start.)");
}

//! Ablation walk-through (paper §V-E): how the ME and MDI constraints each
//! contribute, measured on the CDs world.
//!
//! This is a compact version of `exp_fig5_ablation`; it reports NDCG@10 on
//! the cold-user scenario plus the augmentation diversity each variant
//! produces, making the paper's narrative observable: ME alone generates
//! diverse-but-less-meaningful ratings, MDI alone generates meaningful-but-
//! similar ratings, and the combination wins.
//!
//! ```sh
//! cargo run --release --example ablation_study
//! ```

use metadpa::core::eval::{evaluate_scenario, Recommender};
use metadpa::core::pipeline::{MetaDpa, MetaDpaConfig, Variant};
use metadpa::data::generator::generate_world;
use metadpa::data::presets::cds_world;
use metadpa::data::splits::{ScenarioKind, SplitConfig, Splitter};

fn main() {
    let seed = 2022;
    let world = generate_world(&cds_world(seed));
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let cold_user = splitter.scenario(ScenarioKind::ColdUser);

    println!("{:<14} {:>12} {:>12} {:>12}", "variant", "C-U NDCG@10", "diversity", "confidence");
    println!("{}", "-".repeat(54));
    for variant in [Variant::Full, Variant::MdiOnly, Variant::MeOnly, Variant::Plain] {
        let mut cfg = MetaDpaConfig::fast();
        cfg.variant = variant;
        cfg.seed = seed;
        let mut model = MetaDpa::new(cfg);
        model.fit(&world, &warm);
        let ndcg = evaluate_scenario(&mut model, &world, &cold_user, 10).ndcg;
        let d = model.diversity();
        println!(
            "{:<14} {:>12.4} {:>12.4} {:>12.4}",
            variant.label(),
            ndcg,
            d.mean_pairwise_distance,
            d.mean_confidence
        );
    }
    println!(
        "\n(expected ordering per the paper: Full best; MDI-only close behind;\n\
         ME-only lowest of the constraint variants.)"
    );
}

//! Quickstart: generate a synthetic multi-domain world, train MetaDPA, and
//! recommend items to a cold-start user.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metadpa::core::eval::Recommender;
use metadpa::core::pipeline::{MetaDpa, MetaDpaConfig};
use metadpa::data::generator::generate_world;
use metadpa::data::presets::tiny_world;
use metadpa::data::splits::{ScenarioKind, SplitConfig, Splitter};

fn main() {
    // 1. A miniature two-source world (Books-like target + two sources).
    let world = generate_world(&tiny_world(2022));
    println!(
        "world: target '{}' with {} users x {} items, {} sources",
        world.target.name,
        world.target.n_users(),
        world.target.n_items(),
        world.n_sources()
    );

    // 2. Build the paper's four problem settings; train on the warm tasks.
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let cold_user = splitter.scenario(ScenarioKind::ColdUser);

    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    println!("fitting MetaDPA (adaptation -> augmentation -> meta-learning)...");
    model.fit(&world, &warm);
    let d = model.diversity();
    println!(
        "augmentation: k = {} generated rating sets, diversity = {:.4}",
        d.k, d.mean_pairwise_distance
    );

    // 3. Fine-tune on a cold user's few support ratings and recommend.
    let instance = &cold_user.eval[0];
    let task = cold_user
        .finetune_tasks
        .iter()
        .find(|t| t.user == instance.user)
        .expect("every eval user has a support task");
    model.fine_tune(std::slice::from_ref(task), &world.target);

    let candidates: Vec<usize> = (0..world.target.n_items()).collect();
    let scores = model.score(&world.target, instance.user, &candidates);
    let mut ranked: Vec<(usize, f32)> = candidates.into_iter().zip(scores).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

    println!("\ntop-10 recommendations for cold-start user {}:", instance.user);
    for (rank, (item, score)) in ranked.iter().take(10).enumerate() {
        let marker = if *item == instance.positive { "  <- held-out positive" } else { "" };
        println!("  {:>2}. item {:>4}  score {:+.3}{}", rank + 1, item, score, marker);
    }
    let position = ranked.iter().position(|&(i, _)| i == instance.positive).unwrap() + 1;
    println!(
        "\nheld-out positive item {} ranked {position} of {}",
        instance.positive,
        ranked.len()
    );
}
